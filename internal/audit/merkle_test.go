package audit

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic, strictly advancing clock.
func fixedClock() func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Microsecond)
	}
}

// emitN emits n CatShell records on one log.
func emitN(l *Log, n int) {
	for i := 0; i < n; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "command", User: "alice", App: 7, Thread: int64(i % 5), Detail: fmt.Sprintf("cmd %d", i)})
	}
}

func TestProveVerifyProofRoundTrip(t *testing.T) {
	// Sweep batch shapes: single leaf, partial group, exactly one
	// group, multi-group, multi-level, and count not divisible by the
	// fan-out.
	for _, n := range []int{1, 3, 8, 9, 64, 65, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			l, _ := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 256, SegmentRecords: 512, Clock: fixedClock()})
			emitN(l, n)
			l.Sync()
			for seq := uint64(1); seq <= uint64(n); seq++ {
				p, err := l.Prove(seq)
				if err != nil {
					t.Fatalf("Prove(%d): %v", seq, err)
				}
				if err := VerifyProof(p); err != nil {
					t.Fatalf("VerifyProof(seq %d): %v", seq, err)
				}
				rec, err := p.Record()
				if err != nil || rec.Seq != seq {
					t.Fatalf("proof record: %+v, %v", rec, err)
				}
				// The proof's chain value must anchor to the log's
				// published head when it is the newest batch.
				if p.Batch == int(l.Stats().Batches)-1 && p.Chain != l.Stats().LastChain {
					t.Fatalf("newest batch's proof chain %s != published head %s", p.Chain, l.Stats().LastChain)
				}
			}
		})
	}
}

func TestProofHashCountIsLogarithmic(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 256, SegmentRecords: 512})
	emitN(l, 256)
	l.Sync()
	p, err := l.Prove(100)
	if err != nil {
		t.Fatal(err)
	}
	// 256 leaves → 32 groups → 4 → 1: one group hash, two interior
	// levels, one chain link = 4 hashes. log₈(256) ≈ 2.67.
	if p.Hashes() != 4 {
		t.Fatalf("verifying a 256-record batch proof takes %d hashes, want 4", p.Hashes())
	}
	if len(p.Group) != merkleFanOut {
		t.Fatalf("leaf group has %d lines, want %d", len(p.Group), merkleFanOut)
	}
}

func TestForgedProofsRejected(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 64, SegmentRecords: 512})
	emitN(l, 64)
	l.Sync()
	fresh := func() Proof {
		p, err := l.Prove(20)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := VerifyProof(fresh()); err != nil {
		t.Fatalf("pristine proof rejected: %v", err)
	}
	for name, forge := range map[string]func(*Proof){
		"claimed seq": func(p *Proof) { p.Seq = 21 },
		"record payload": func(p *Proof) {
			p.Group[p.GroupPos] = strings.Replace(p.Group[p.GroupPos], "cmd 19", "cmd 99", 1)
		},
		"neighbour leaf": func(p *Proof) {
			i := (p.GroupPos + 1) % len(p.Group)
			p.Group[i] = strings.Replace(p.Group[i], "alice", "evil!", 1)
		},
		"sibling hash": func(p *Proof) {
			p.Path[0].Siblings[0] = strings.Repeat("ab", 32)
		},
		"root":       func(p *Proof) { p.Root = strings.Repeat("cd", 32) },
		"seq range":  func(p *Proof) { p.First = 2; p.Last = 65 },
		"chain link": func(p *Proof) { p.Chain = strings.Repeat("ef", 32) },
		"prev chain": func(p *Proof) { p.PrevChain = strings.Repeat("12", 32) },
		"batch index": func(p *Proof) {
			p.Batch = 7 // breaks the chain link over the header base
		},
	} {
		p := fresh()
		forge(&p)
		if err := VerifyProof(p); err == nil {
			t.Errorf("forged proof (%s) accepted", name)
		}
	}
}

func TestTailTruncationDetectedAgainstAnchor(t *testing.T) {
	l, store := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 8, SegmentRecords: 512, Clock: fixedClock()})
	emitN(l, 20) // Sync per batch shape: 8+8+4 in one segment
	l.Sync()
	st := l.Stats()
	if st.Batches != 3 || st.LastChain == "" || st.LastRoot == "" {
		t.Fatalf("expected 3 anchored batches: %+v", st)
	}

	// Cut the final batch (header + leaves) off the segment tail.
	name := segmentName(0)
	data, err := store.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	cut := strings.LastIndex(string(data[:len(data)-1]), "\n#")
	if cut < 0 {
		t.Fatal("no trailing batch header found")
	}
	store.Put(name, data[:cut+1])

	// A live Log knows its own head: even by-root verification sees
	// the walked chain stop short of it.
	res, err := l.VerifyWith(VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || !strings.Contains(res.Reason, "live chain") {
		t.Fatalf("live log missed tail truncation: %+v", res)
	}

	// A fresh Log over the truncated store has no memory — the
	// surviving prefix is self-consistent, which is exactly why the
	// head must be anchored out-of-band (Stats gave us LastChain +
	// Records before the cut).
	l2 := New(Config{Store: store})
	clean, err := l2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !clean.OK {
		t.Fatalf("truncated-but-consistent prefix should pass an unanchored walk: %+v", clean)
	}
	anchored, err := l2.VerifyWith(VerifyOptions{Full: true, AnchorChain: st.LastChain, AnchorRecords: st.Records})
	if err != nil {
		t.Fatal(err)
	}
	if anchored.OK || !strings.Contains(anchored.Reason, "anchor") {
		t.Fatalf("anchored verify missed tail truncation: %+v", anchored)
	}
}

func TestVerifyByRootAndSpotCheck(t *testing.T) {
	l, store := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 16, SegmentRecords: 64, Clock: fixedClock()})
	emitN(l, 160)
	l.Sync()

	res, err := l.VerifyWith(VerifyOptions{SpotCheck: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Mode != "roots" || res.SpotChecked != 2 {
		t.Fatalf("by-root verify of a clean trail: %+v", res)
	}
	if res.Records != 160 || res.Batches != 10 {
		t.Fatalf("by-root walked %d records / %d batches, want 160/10", res.Records, res.Batches)
	}

	// Tamper one leaf in place (same length). By-root without spot
	// checks cannot see it — the chain of roots is untouched — but
	// enough spot checks deterministically catch it, and full mode
	// always does.
	name := segmentName(1)
	data, _ := store.Read(name)
	tampered := strings.Replace(string(data), "cmd 70", "cmd 00", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	store.Put(name, []byte(tampered))
	delete(l.segIdx, name) // drop the cached index so the walk re-reads

	if res, _ := l.VerifyWith(VerifyOptions{}); !res.OK {
		t.Fatalf("pure by-root mode should not rehash leaves: %+v", res)
	}
	full, _ := l.VerifyWith(VerifyOptions{Full: true})
	if full.OK || len(full.Faults) != 1 {
		t.Fatalf("full verify must localize the tampered batch: %+v", full)
	}
	spot, _ := l.VerifyWith(VerifyOptions{SpotCheck: 64})
	if spot.OK {
		t.Fatalf("64 spot checks over 10 batches missed the tamper: %+v", spot)
	}
	if !strings.Contains(spot.Reason, "spot check") {
		t.Fatalf("unexpected spot-check reason: %q", spot.Reason)
	}
}

func TestQueryIndexSkipsButMatchesFullScan(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll, MerkleBatch: 32, SegmentRecords: 64})
	// Three waves in separate batches (Sync commits force a batch
	// boundary): shell-only, deny-only, mixed.
	for i := 0; i < 30; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "command", Detail: fmt.Sprintf("s%d", i)})
	}
	l.Sync()
	for i := 0; i < 30; i++ {
		l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "bob", Detail: fmt.Sprintf("d%d", i)})
	}
	l.Sync()
	for i := 0; i < 30; i++ {
		cat := CatNet
		if i%2 == 0 {
			cat = CatDeny
		}
		l.Emit(Event{Cat: cat, Verb: "x", Detail: fmt.Sprintf("m%d", i)})
	}
	l.Sync()

	all, err := l.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 90 {
		t.Fatalf("full scan returned %d, want 90", len(all))
	}
	for _, cats := range []Category{CatShell, CatDeny, CatNet, CatDeny | CatNet, CatApp} {
		var want []Record
		for _, r := range all {
			if r.Cat&cats != 0 {
				want = append(want, r)
			}
		}
		// Run twice: first may build indexes, second uses the cached
		// index's whole-segment skip path.
		for pass := 0; pass < 2; pass++ {
			got, err := l.Query(Query{Cats: cats})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("cats=%v pass %d: got %d records, want %d", cats, pass, len(got), len(want))
			}
			for i := range got {
				if got[i].Seq != want[i].Seq {
					t.Fatalf("cats=%v: order mismatch at %d", cats, i)
				}
			}
		}
	}
}

func TestMerkleWaitHoldsPartialBatch(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	l, _ := newTestLog(t, Config{
		Mask: CatAll, MerkleBatch: 64, MerkleWait: 50 * time.Millisecond,
		Clock: func() time.Time { return now },
	})
	emitN(l, 10)
	// A non-forced drain sweeps the rings but holds the partial batch.
	l.drain(false)
	st := l.Stats()
	if st.Records != 0 || st.Held != 10 || st.Pending != 10 {
		t.Fatalf("partial batch should be held: %+v", st)
	}
	// Once the wait elapses, the next pass commits it undersized.
	now = now.Add(51 * time.Millisecond)
	l.drain(false)
	st = l.Stats()
	if st.Records != 10 || st.Held != 0 || st.Batches != 1 {
		t.Fatalf("wait expiry should commit the partial batch: %+v", st)
	}
	// A full batch never waits.
	emitN(l, 64)
	l.drain(false)
	if st = l.Stats(); st.Records != 74 || st.Batches != 2 {
		t.Fatalf("full batch should commit immediately: %+v", st)
	}
}

func TestLegacyChainPerRecordMode(t *testing.T) {
	l, store := newTestLog(t, Config{Mask: CatAll, ChainPerRecord: true, SegmentRecords: 16})
	emitN(l, 40)
	l.Sync()
	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Records != 40 || res.Batches != 0 {
		t.Fatalf("legacy trail: %+v", res)
	}
	data, err := store.Read(segmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	if isV2Segment(data) {
		t.Fatal("legacy mode wrote a v2 segment")
	}
	recs, err := l.Query(Query{User: "alice"})
	if err != nil || len(recs) != 40 {
		t.Fatalf("legacy query: %d records, %v", len(recs), err)
	}
	if recs[0].Hash == "" {
		t.Fatal("legacy records must carry per-record hashes")
	}
	// Tampering still breaks the per-record chain from the edit on.
	tampered := strings.Replace(string(data), "cmd 3", "cmd X", 1)
	store.Put(segmentName(0), []byte(tampered))
	res, _ = l.Verify()
	if res.OK || !strings.Contains(res.Reason, "hash mismatch") {
		t.Fatalf("legacy tamper detection: %+v", res)
	}
	// Prove has no Merkle batches to draw on.
	if _, err := l.Prove(5); err == nil {
		t.Fatal("Prove should fail on a v1-only trail")
	}
}

func TestMixedV1ThenV2TrailVerifies(t *testing.T) {
	store := NewMemStore()
	legacy := New(Config{Mask: CatAll, ChainPerRecord: true, SegmentRecords: 8, Store: store})
	emitN(legacy, 20)
	legacy.Sync()

	// A Merkle-mode Log resumes over the same store: new segments are
	// v2, numbering continues, sequences stay monotonic.
	l := New(Config{Mask: CatAll, MerkleBatch: 16, SegmentRecords: 8, Store: store})
	emitN(l, 20)
	l.Sync()

	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Records != 40 {
		t.Fatalf("mixed trail: %+v", res)
	}
	if res.Batches == 0 {
		t.Fatal("v2 tail contributed no batches")
	}
	all, err := l.Query(Query{})
	if err != nil || len(all) != 40 {
		t.Fatalf("mixed query: %d, %v", len(all), err)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("sequence regressed across the format boundary at %d", i)
		}
	}
	// v2 records are provable; v1 records are not.
	if _, err := l.Prove(all[len(all)-1].Seq); err != nil {
		t.Fatalf("proving a v2 record: %v", err)
	}
	if _, err := l.Prove(1); err == nil {
		t.Fatal("proving a v1 record should fail")
	}
}

func TestResumeContinuesRootChain(t *testing.T) {
	store := NewMemStore()
	a := New(Config{Mask: CatAll, MerkleBatch: 8, SegmentRecords: 16, Store: store})
	emitN(a, 20)
	a.Sync()
	head := a.Stats()

	b := New(Config{Mask: CatAll, MerkleBatch: 8, SegmentRecords: 16, Store: store})
	emitN(b, 20)
	b.Sync()
	st := b.Stats()
	if st.Batches <= head.Batches {
		t.Fatalf("resumed log did not extend the root chain: %+v vs %+v", st, head)
	}
	res, err := b.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Records != 40 {
		t.Fatalf("resumed trail: %+v", res)
	}
	if res.LastChain != st.LastChain {
		t.Fatalf("walked head %s != live head %s", res.LastChain, st.LastChain)
	}
	// Records committed by the first incarnation are still provable.
	p, err := b.Prove(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProof(p); err != nil {
		t.Fatal(err)
	}
}

// capAdmission is a test Admission capping pending records per user.
type capAdmission struct {
	mu      sync.Mutex
	cap     int
	pending map[string]int
	reject  int
}

func (a *capAdmission) AdmitRecord(user string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pending == nil {
		a.pending = make(map[string]int)
	}
	if a.pending[user] >= a.cap {
		a.reject++
		return false
	}
	a.pending[user]++
	return true
}

func (a *capAdmission) ReleaseRecords(user string, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pending[user] -= n
	if a.pending[user] < 0 {
		a.pending[user] = 0
	}
}

func TestAdmissionBackpressure(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll})
	adm := &capAdmission{cap: 5}
	l.SetAdmission(adm)

	for i := 0; i < 12; i++ {
		l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "mallory", Detail: "storm"})
	}
	// Kernel events (no user) are never admission-gated.
	l.Emit(Event{Cat: CatThread, Verb: "spawn"})
	st := l.Stats()
	if st.Degraded != 7 || st.Dropped != 7 {
		t.Fatalf("expected 7 backpressure drops: %+v", st)
	}
	if st.Emitted != 13 {
		t.Fatalf("emitted %d, want 13 (conservation counts rejected emissions)", st.Emitted)
	}
	l.Sync()
	st = l.Stats()
	if st.Records != 6 {
		t.Fatalf("chained %d, want 6 (5 mallory + 1 kernel)", st.Records)
	}
	if st.Records+st.Dropped != st.Emitted {
		t.Fatalf("conservation broken: %+v", st)
	}
	// Draining released the admissions: the user can emit again.
	adm.mu.Lock()
	pending := adm.pending["mallory"]
	adm.mu.Unlock()
	if pending != 0 {
		t.Fatalf("drain left %d pending admissions", pending)
	}
	l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "mallory", Detail: "after"})
	l.Sync()
	if st = l.Stats(); st.Records != 7 {
		t.Fatalf("post-release emit not admitted: %+v", st)
	}
}

func TestAdmissionReleasedOnRingOverflow(t *testing.T) {
	// One shard of 4 slots, no drainer: overflow displaces admitted
	// records, which must hand their admission back.
	l, _ := newTestLog(t, Config{Mask: CatAll, Shards: 1, ShardCap: 4})
	adm := &capAdmission{cap: 100}
	l.SetAdmission(adm)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "c", User: "u", Thread: 0})
	}
	adm.mu.Lock()
	pending := adm.pending["u"]
	adm.mu.Unlock()
	if pending != 4 {
		t.Fatalf("pending admissions %d, want 4 (ring capacity)", pending)
	}
	l.Sync()
	adm.mu.Lock()
	pending = adm.pending["u"]
	adm.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending admissions %d after drain, want 0", pending)
	}
}

func TestBodyEncoderMatchesAppendBody(t *testing.T) {
	recs := []Record{
		{Event: Event{Cat: CatShell, Verb: "command", User: "alice", App: 1, Thread: 2, Detail: "plain ascii"}, Seq: 1, Time: 111},
		{Event: Event{Cat: CatShell, Verb: "command", User: "alice", App: 1, Thread: 3, Detail: "plain ascii"}, Seq: 2, Time: 222}, // memo hits
		{Event: Event{Cat: CatFile, Verb: "open", User: "al\tice\n", App: 4, Thread: 5, Detail: "path \"q\"\t\\weird\nnon-ascii é"}, Seq: 3, Time: 333},
		{Event: Event{Cat: CatFile, Verb: "open", User: "al\tice\n", App: 4, Thread: 5, Detail: "path \"q\"\t\\weird\nnon-ascii é"}, Seq: 4, Time: 444}, // escaped memo hits
		{Event: Event{Cat: CatDeny, Verb: "", User: "", Detail: ""}, Seq: 5, Time: 555},
	}
	var enc bodyEncoder
	for i := range recs {
		want := string(recs[i].appendBody(nil))
		got := string(enc.appendBody(nil, &recs[i]))
		if got != want {
			t.Fatalf("record %d:\n got %q\nwant %q", i, got, want)
		}
		// v2 leaf lines round-trip without a hash field.
		rt, err := parseRecordLine([]byte(got), false)
		if err != nil {
			t.Fatal(err)
		}
		if rt != recs[i] {
			t.Fatalf("leaf round trip mismatch:\n in %+v\nout %+v", recs[i], rt)
		}
	}
}
