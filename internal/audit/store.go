package audit

import (
	"fmt"
	"sort"
	"sync"
)

// SegmentStore is the narrow persistence interface the drainer appends
// log segments through. The vfs package provides the in-VFS
// implementation the platform wires in (the audit package itself
// imports nothing from the repository, so every substrate — including
// vfs — may emit into it without an import cycle).
type SegmentStore interface {
	// Append appends data to the named segment, creating it if
	// missing. Implementations must not retain data: the drainer
	// reuses the buffer across calls.
	Append(name string, data []byte) error
	// List returns the names of all segments, in any order.
	List() ([]string, error)
	// Read returns a segment's full contents.
	Read(name string) ([]byte, error)
}

// MemStore is an in-memory SegmentStore for tests, benchmarks and
// VM-less use of the audit log.
type MemStore struct {
	mu       sync.Mutex
	segments map[string][]byte
}

var _ SegmentStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory segment store.
func NewMemStore() *MemStore {
	return &MemStore{segments: make(map[string][]byte)}
}

// Append implements SegmentStore.
func (s *MemStore) Append(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segments[name] = append(s.segments[name], data...)
	return nil
}

// List implements SegmentStore.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.segments))
	for name := range s.segments {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Read implements SegmentStore.
func (s *MemStore) Read(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.segments[name]
	if !ok {
		return nil, fmt.Errorf("audit: no segment %q", name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put replaces a segment's contents wholesale. It exists so tamper
// tests can corrupt a stored segment; real consumers only Append.
func (s *MemStore) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segments[name] = append([]byte(nil), data...)
}
