package audit

import (
	"encoding/hex"
	"fmt"
)

// ProofStep is one interior level of an inclusion proof: the node's
// position within its group of up to eight, and the other group
// members' hashes in order (the node's own hash is what the verifier
// computes).
type ProofStep struct {
	Pos      int
	Siblings []string
}

// Proof is a self-contained inclusion proof for one audit record: the
// record's leaf group (its own line plus up to seven neighbours —
// level 0 hashes whole groups, so the proof carries the record's
// immediate context for free), the interior sibling hashes up to the
// batch's Merkle root, and the header fields that link that root into
// the root chain. VerifyProof checks it without any access to the
// log: 1 + len(Path) + 1 hashes total — O(log n) in the batch size —
// against the root and the chain link. Trusting the proof then
// reduces to trusting Chain, which the verifier compares against a
// published anchor (Stats().LastChain) or a chain walk.
type Proof struct {
	// Seq is the proven record's sequence number.
	Seq uint64
	// Segment/Batch locate the record's batch (Batch is the
	// root-chain position).
	Segment string
	Batch   int
	// First/Last/Count/CatMask echo the batch header.
	First   uint64
	Last    uint64
	Count   int
	CatMask Category
	// LeafIndex is the record's position within the batch;
	// GroupPos its position within Group.
	LeafIndex int
	GroupPos  int
	// Group holds the record's level-0 leaf group: the encoded lines
	// of up to eight consecutive records, the proven one included.
	Group []string
	// Path lists the interior levels from the group's hash up to the
	// root.
	Path []ProofStep
	// Root is the batch's Merkle root (hex); Chain its chain link and
	// PrevChain the preceding batch's (hex; all-zero for batch 0).
	Root      string
	Chain     string
	PrevChain string
}

// Record decodes the proven record from the proof's leaf group.
func (p *Proof) Record() (Record, error) {
	if p.GroupPos < 0 || p.GroupPos >= len(p.Group) {
		return Record{}, fmt.Errorf("audit: proof group position %d outside group of %d", p.GroupPos, len(p.Group))
	}
	return parseRecordLine([]byte(p.Group[p.GroupPos]), false)
}

// Hashes reports how many hash computations VerifyProof performs for
// this proof: one leaf-group hash, one per interior level, and the
// chain link — O(log n) in the batch size.
func (p *Proof) Hashes() int { return 2 + len(p.Path) }

// Prove returns an inclusion proof for the record with the given
// sequence number. It forces a drain first so freshly emitted records
// are provable. Records dropped on ring overflow (sequence gaps) and
// records persisted in v1 segments have no Merkle batch and cannot be
// proven.
func (l *Log) Prove(seq uint64) (Proof, error) {
	l.drainMu.Lock()
	defer l.drainMu.Unlock()
	l.drainLocked(true)
	names, err := l.listSegments()
	if err != nil {
		return Proof{}, err
	}
	// Walk batches in chain order tracking the previous link, so the
	// proof can carry PrevChain.
	var prevChain [32]byte
	for _, name := range names {
		data, err := l.store.Read(name)
		if err != nil {
			return Proof{}, err
		}
		if !isV2Segment(data) {
			continue
		}
		idx := l.segIdx[name]
		if idx == nil || idx.v1 || !idx.spans(len(data)) {
			if idx, err = buildSegIndex(data); err != nil {
				return Proof{}, fmt.Errorf("%s: %w", name, err)
			}
			l.segIdx[name] = idx
		}
		for bi := range idx.batches {
			m := &idx.batches[bi]
			if seq >= m.first && seq <= m.last {
				return buildProof(name, data, m, prevChain, seq)
			}
			prevChain = m.chain
		}
	}
	return Proof{}, fmt.Errorf("audit: seq %d is not in any Merkle batch (never persisted, dropped on overflow, or in a v1 segment)", seq)
}

// buildProof reconstructs the batch's tree and extracts the proof for
// seq, which falls in the batch's header range.
func buildProof(segment string, data []byte, m *batchMeta, prevChain [32]byte, seq uint64) (Proof, error) {
	// Slice the leaf lines back out of the segment.
	lines := make([][]byte, 0, m.count)
	leafIdx := -1
	off := m.dataOff
	for off < m.end {
		line, next := nextLine(data, off)
		off = next
		if len(line) == 0 {
			continue
		}
		s, err := seqOfLine(line)
		if err != nil {
			return Proof{}, fmt.Errorf("audit: %s batch %d: %w", segment, m.idx, err)
		}
		if s == seq {
			leafIdx = len(lines)
		}
		lines = append(lines, line)
	}
	if leafIdx < 0 {
		// In the header's range but absent: the seq was dropped on
		// ring overflow before the batch committed.
		return Proof{}, fmt.Errorf("audit: seq %d fell in batch %d's range [%d,%d] but was dropped before commit", seq, m.idx, m.first, m.last)
	}
	// Level 0: group hashes.
	level0 := make([][32]byte, 0, (len(lines)+merkleFanOut-1)/merkleFanOut)
	var buf []byte
	var h [32]byte
	for g := 0; g < len(lines); g += merkleFanOut {
		e := min(g+merkleFanOut, len(lines))
		h, buf = leafGroupHash(buf, lines[g:e])
		level0 = append(level0, h)
	}
	levels := merkleLevels(level0)
	root := levels[len(levels)-1][0]
	if root != m.root {
		return Proof{}, fmt.Errorf("audit: %s batch %d root mismatch — segment tampered, refusing to prove", segment, m.idx)
	}

	p := Proof{
		Seq:       seq,
		Segment:   segment,
		Batch:     m.idx,
		First:     m.first,
		Last:      m.last,
		Count:     m.count,
		CatMask:   m.mask,
		LeafIndex: leafIdx,
		Root:      hex.EncodeToString(m.root[:]),
		Chain:     hex.EncodeToString(m.chain[:]),
		PrevChain: hex.EncodeToString(prevChain[:]),
	}
	// The leaf group: the record's own line and its neighbours.
	gStart := leafIdx - leafIdx%merkleFanOut
	gEnd := min(gStart+merkleFanOut, len(lines))
	p.GroupPos = leafIdx - gStart
	for _, line := range lines[gStart:gEnd] {
		p.Group = append(p.Group, string(line))
	}
	// Interior levels: siblings of the node on the path to the root.
	// A lone trailing node is promoted unhashed, so it contributes no
	// step.
	node := leafIdx / merkleFanOut
	for k := 0; k < len(levels)-1; k++ {
		level := levels[k]
		g := node - node%merkleFanOut
		e := min(g+merkleFanOut, len(level))
		if e-g > 1 {
			step := ProofStep{Pos: node - g}
			for i := g; i < e; i++ {
				if i == node {
					continue
				}
				step.Siblings = append(step.Siblings, hex.EncodeToString(level[i][:]))
			}
			p.Path = append(p.Path, step)
		}
		node /= merkleFanOut
	}
	return p, nil
}

// VerifyProof checks an inclusion proof standalone: it recomputes the
// leaf-group hash, folds the interior siblings to the root, and
// re-links the root into the chain — 1 + len(Path) + 1 hashes, O(log n)
// in the batch size, touching none of the log's segments. The caller
// completes the trust chain by comparing p.Chain against an anchored
// chain value (Stats().LastChain at the time, or a fresh VerifyWith
// walk). Returns nil if the proof is sound.
func VerifyProof(p Proof) error {
	if len(p.Group) == 0 || len(p.Group) > merkleFanOut {
		return fmt.Errorf("audit: proof leaf group has %d lines, want 1..%d", len(p.Group), merkleFanOut)
	}
	if p.GroupPos < 0 || p.GroupPos >= len(p.Group) {
		return fmt.Errorf("audit: proof group position %d outside group of %d", p.GroupPos, len(p.Group))
	}
	// The record itself must decode and match the proof's claims.
	rec, err := p.Record()
	if err != nil {
		return fmt.Errorf("audit: proof record does not parse: %w", err)
	}
	if rec.Seq != p.Seq {
		return fmt.Errorf("audit: proof claims seq %d but its record says %d", p.Seq, rec.Seq)
	}
	if p.Seq < p.First || p.Seq > p.Last {
		return fmt.Errorf("audit: seq %d outside the batch range [%d,%d]", p.Seq, p.First, p.Last)
	}
	if rec.Cat&p.CatMask != rec.Cat {
		return fmt.Errorf("audit: record category %s not within the batch mask %s", rec.Cat, p.CatMask)
	}
	// Leaf group hash.
	lines := make([][]byte, len(p.Group))
	for i, s := range p.Group {
		lines[i] = []byte(s)
	}
	h, buf := leafGroupHash(nil, lines)
	// Fold the interior levels.
	for _, step := range p.Path {
		if len(step.Siblings) == 0 || len(step.Siblings) >= merkleFanOut {
			return fmt.Errorf("audit: proof step has %d siblings, want 1..%d", len(step.Siblings), merkleFanOut-1)
		}
		if step.Pos < 0 || step.Pos > len(step.Siblings) {
			return fmt.Errorf("audit: proof step position %d outside group of %d", step.Pos, len(step.Siblings)+1)
		}
		children := make([][32]byte, 0, len(step.Siblings)+1)
		si := 0
		for i := 0; i <= len(step.Siblings); i++ {
			if i == step.Pos {
				children = append(children, h)
				continue
			}
			var sib [32]byte
			if err := hexDecode32(&sib, []byte(step.Siblings[si])); err != nil {
				return fmt.Errorf("audit: bad sibling hash: %w", err)
			}
			children = append(children, sib)
			si++
		}
		h, buf = interiorHash(buf, children)
	}
	if got := hex.EncodeToString(h[:]); got != p.Root {
		return fmt.Errorf("audit: proof does not fold to the claimed root (leaf or siblings forged)")
	}
	// Re-link the root into the chain.
	var root, prev, chain [32]byte
	if err := hexDecode32(&root, []byte(p.Root)); err != nil {
		return fmt.Errorf("audit: bad root: %w", err)
	}
	if err := hexDecode32(&prev, []byte(p.PrevChain)); err != nil {
		return fmt.Errorf("audit: bad prev chain: %w", err)
	}
	if err := hexDecode32(&chain, []byte(p.Chain)); err != nil {
		return fmt.Errorf("audit: bad chain: %w", err)
	}
	base := appendHeaderBase(buf[:0], p.Batch, p.Count, p.First, p.Last, p.CatMask, root)
	link, _ := chainLink(nil, prev, base)
	if link != chain {
		return fmt.Errorf("audit: proof header does not link into the root chain (header fields forged)")
	}
	return nil
}
