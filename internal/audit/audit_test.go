package audit

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestLog builds a log over a MemStore with small rings so tests
// can force overflow cheaply. No drainer runs; tests call Sync.
func newTestLog(t *testing.T, cfg Config) (*Log, *MemStore) {
	t.Helper()
	store := NewMemStore()
	cfg.Store = store
	return New(cfg), store
}

func TestDisabledCategoryIsInvisible(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatDeny})
	l.Emit(Event{Cat: CatShell, Verb: "command", Detail: "ls"})
	l.Sync()
	st := l.Stats()
	if st.Emitted != 0 || st.Records != 0 || st.Pending != 0 {
		t.Fatalf("disabled emission left traces: %+v", st)
	}
	if l.Enabled(CatShell) {
		t.Fatal("CatShell should read disabled")
	}
	if !l.Enabled(CatDeny) {
		t.Fatal("CatDeny should read enabled")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Cat: CatDeny, Verb: "deny"})
	if l.Enabled(CatDeny) {
		t.Fatal("nil log reported a category enabled")
	}
	if l.Mask() != 0 {
		t.Fatal("nil log reported a mask")
	}
}

func TestChainAppendQueryVerify(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll, SegmentRecords: 16})
	const n = 50
	for i := 0; i < n; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "command", User: "alice", App: 7, Thread: int64(i % 3), Detail: fmt.Sprintf("cmd %d", i)})
	}
	l.Sync()

	recs, err := l.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("query returned %d records, want %d", len(recs), n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order: seq %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}

	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("fresh chain does not verify: %+v", res)
	}
	if res.Records != n {
		t.Fatalf("verify walked %d records, want %d", res.Records, n)
	}
	// 50 records / 16 per segment → 4 segments.
	if res.Segments != 4 {
		t.Fatalf("got %d segments, want 4", res.Segments)
	}
	if st := l.Stats(); st.Segments != 4 || st.Records != n {
		t.Fatalf("stats disagree: %+v", st)
	}
}

func TestQueryFilters(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll})
	l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "alice", App: 1, Detail: "file /x read"})
	l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "bob", App: 2, Detail: "file /y read"})
	l.Emit(Event{Cat: CatShell, Verb: "command", User: "alice", App: 1, Detail: "ls"})
	l.Emit(Event{Cat: CatNet, Verb: "connect", Detail: "localhost:80"})
	l.Sync()

	for _, tc := range []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 4},
		{"by category", Query{Cats: CatDeny}, 2},
		{"by category union", Query{Cats: CatDeny | CatShell}, 3},
		{"by user", Query{User: "alice"}, 2},
		{"by user+cat", Query{User: "alice", Cats: CatDeny}, 1},
		{"by app", Query{App: 2}, 1},
		{"by verb", Query{Verb: "connect"}, 1},
		{"limit", Query{Limit: 2}, 2},
		{"no match", Query{User: "mallory"}, 0},
	} {
		recs, err := l.Query(tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(recs) != tc.want {
			t.Fatalf("%s: got %d records, want %d", tc.name, len(recs), tc.want)
		}
	}

	// Limit keeps the LAST matches (tail semantics).
	recs, err := l.Query(Query{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Verb != "connect" {
		t.Fatalf("limit did not keep the tail: got %q", recs[0].Verb)
	}

	// Time bounds.
	all, _ := l.Query(Query{})
	mid := all[1].Time
	recs, _ = l.Query(Query{Since: mid})
	if len(recs) != 3 {
		t.Fatalf("since filter: got %d, want 3", len(recs))
	}
	recs, _ = l.Query(Query{Until: mid})
	if len(recs) != 2 {
		t.Fatalf("until filter: got %d, want 2", len(recs))
	}
}

func TestOverflowDropsOldestAndChainStillVerifies(t *testing.T) {
	// One shard of 8 slots; everything lands in it (Thread: 0).
	l, _ := newTestLog(t, Config{Mask: CatAll, Shards: 1, ShardCap: 8})
	const n = 30
	for i := 0; i < n; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "command", Detail: fmt.Sprintf("cmd %d", i)})
	}
	st := l.Stats()
	if st.Dropped != n-8 {
		t.Fatalf("dropped %d, want %d", st.Dropped, n-8)
	}
	if st.Pending != 8 {
		t.Fatalf("pending %d, want 8", st.Pending)
	}
	l.Sync()

	// The survivors are the NEWEST 8 (drop-oldest), in order.
	recs, err := l.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("chained %d records, want 8", len(recs))
	}
	if recs[0].Detail != "cmd 22" || recs[7].Detail != "cmd 29" {
		t.Fatalf("wrong survivors: first %q last %q", recs[0].Detail, recs[7].Detail)
	}

	// Despite the sequence gap, the persisted chain verifies.
	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("chain with drops does not verify: %+v", res)
	}
	if st := l.Stats(); st.Categories[CatShell.index()].Dropped != n-8 {
		t.Fatalf("per-category drop counter wrong: %+v", st.Categories)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	l, store := newTestLog(t, Config{Mask: CatAll, SegmentRecords: 8})
	for i := 0; i < 20; i++ {
		l.Emit(Event{Cat: CatApp, Verb: "exec", User: "alice", Detail: fmt.Sprintf("app %d", i)})
	}
	l.Sync()
	if res, _ := l.Verify(); !res.OK {
		t.Fatalf("pristine chain must verify: %+v", res)
	}

	// Flip the payload of a record in the middle segment.
	name := segmentName(1)
	data, err := store.Read(name)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "app 9", "app 0", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	store.Put(name, []byte(tampered))

	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("verify missed the tampered record")
	}
	if res.BrokenSegment != name {
		t.Fatalf("broken link located in %q, want %q", res.BrokenSegment, name)
	}
	if res.BrokenLine != 2 { // the faulted batch's header is line 2 (after "!v2")
		t.Fatalf("broken link at line %d, want 2", res.BrokenLine)
	}
	if !strings.Contains(res.Reason, "root mismatch") {
		t.Fatalf("unexpected reason %q", res.Reason)
	}
	// The corruption is localized to its batch: exactly one fault,
	// naming batch 1 (seqs 9–16) — batches 0 and 2 still verify, so
	// the trail before AND after the tamper remains trustworthy.
	if len(res.Faults) != 1 {
		t.Fatalf("want 1 localized fault, got %+v", res.Faults)
	}
	f := res.Faults[0]
	if f.Batch != 1 || f.First != 9 || f.Last != 16 || f.Segment != name {
		t.Fatalf("fault not localized to batch 1 [9,16] in %s: %+v", name, f)
	}
	if res.Records != 20 {
		t.Fatalf("verify should still walk all 20 records, got %d", res.Records)
	}
}

func TestVerifyDetectsReorder(t *testing.T) {
	l, store := newTestLog(t, Config{Mask: CatAll, SegmentRecords: 64})
	for i := 0; i < 4; i++ {
		l.Emit(Event{Cat: CatNet, Verb: "listen", Detail: fmt.Sprintf("host:%d", i)})
	}
	l.Sync()
	name := segmentName(0)
	data, _ := store.Read(name)
	// Lines: "!v2", the batch header, then the leaf lines — swap two
	// leaves.
	lines := strings.SplitAfter(string(data), "\n")
	lines[2], lines[3] = lines[3], lines[2]
	store.Put(name, []byte(strings.Join(lines, "")))
	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("verify missed a reordered chain")
	}
}

func TestSubscribeFanoutAndDrops(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll})
	wide := l.Subscribe("wide", CatAll, 64)
	narrow := l.Subscribe("narrow", CatDeny, 64)
	tiny := l.Subscribe("tiny", CatAll, 1)

	for i := 0; i < 10; i++ {
		l.Emit(Event{Cat: CatShell, Verb: "command", Detail: fmt.Sprintf("c%d", i)})
	}
	l.Emit(Event{Cat: CatDeny, Verb: "deny", User: "bob"})
	l.Sync()

	if got := len(wide.C()); got != 11 {
		t.Fatalf("wide got %d records, want 11", got)
	}
	if got := len(narrow.C()); got != 1 {
		t.Fatalf("narrow got %d records, want 1", got)
	}
	rec := <-narrow.C()
	if rec.User != "bob" || rec.Cat != CatDeny {
		t.Fatalf("narrow saw wrong record: %+v", rec)
	}
	// tiny's queue holds 1; the other 10 deliveries were dropped.
	if tiny.Dropped() != 10 {
		t.Fatalf("tiny dropped %d, want 10", tiny.Dropped())
	}
	if st := l.Stats(); st.SubscriberDrops != 10 || st.Subscribers != 3 {
		t.Fatalf("stats disagree: %+v", st)
	}

	wide.Close()
	narrow.Close()
	tiny.Close()
	if st := l.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscriptions leaked: %+v", st)
	}
	// Closed channel drains then reports closed.
	if _, ok := <-narrow.C(); ok {
		t.Fatal("closed subscription channel still delivering")
	}
}

// TestConcurrentEmitDrainSubscribeCancel is the subsystem's -race
// stress: many emitters across shards, a live drainer, and subscribers
// that cancel mid-stream, all concurrently.
func TestConcurrentEmitDrainSubscribeCancel(t *testing.T) {
	l, _ := newTestLog(t, Config{Mask: CatAll, Shards: 4, ShardCap: 256, SegmentRecords: 128, FlushInterval: time.Millisecond})
	stop := make(chan struct{})
	var drainer sync.WaitGroup
	drainer.Add(1)
	go func() {
		defer drainer.Done()
		l.Run(stop)
	}()

	const emitters = 8
	const perEmitter = 500
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				l.Emit(Event{Cat: CatShell, Verb: "command", Thread: int64(e), Detail: "x"})
			}
		}(e)
	}
	// Subscribers appear, consume a little, and cancel while the
	// drainer is fanning out.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub := l.Subscribe(fmt.Sprintf("s%d", s), CatAll, 16)
			for i := 0; i < 50; i++ {
				select {
				case <-sub.C():
				case <-time.After(time.Millisecond):
				}
			}
			sub.Close()
		}(s)
	}
	wg.Wait()
	close(stop)
	drainer.Wait()

	st := l.Stats()
	if st.Pending != 0 {
		t.Fatalf("final drain left %d pending", st.Pending)
	}
	if st.Emitted != emitters*perEmitter {
		t.Fatalf("emitted %d, want %d", st.Emitted, emitters*perEmitter)
	}
	if st.Records+st.Dropped != st.Emitted {
		t.Fatalf("records(%d) + dropped(%d) != emitted(%d)", st.Records, st.Dropped, st.Emitted)
	}
	res, err := l.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("chain broken after concurrent stress: %+v", res)
	}
	if uint64(res.Records) != st.Records {
		t.Fatalf("verify walked %d, stats say %d", res.Records, st.Records)
	}
}

func TestEnableDisableMask(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if l.Mask() != DefaultMask {
		t.Fatalf("default mask %v, want %v", l.Mask(), DefaultMask)
	}
	if l.Enabled(CatAccess) {
		t.Fatal("CatAccess must start disabled")
	}
	l.Enable(CatAccess)
	if !l.Enabled(CatAccess) {
		t.Fatal("Enable(CatAccess) not observed")
	}
	l.Disable(CatAccess | CatShell)
	if l.Enabled(CatAccess) || l.Enabled(CatShell) {
		t.Fatal("Disable not observed")
	}
	l.SetMask(CatDeny)
	if l.Mask() != CatDeny {
		t.Fatalf("SetMask: got %v", l.Mask())
	}
}

func TestParseCategoryAndString(t *testing.T) {
	for _, name := range CategoryNames() {
		c, err := ParseCategory(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != name {
			t.Fatalf("round trip %q → %v", name, c)
		}
	}
	if c, err := ParseCategory("all"); err != nil || c != CatAll {
		t.Fatalf("all → %v, %v", c, err)
	}
	if _, err := ParseCategory("bogus"); err == nil {
		t.Fatal("bogus category accepted")
	}
	if got := (CatDeny | CatNet).String(); got != "deny,net" {
		t.Fatalf("mask string %q", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	// Hostile strings survive the line encoding.
	in := Record{
		Event: Event{
			Cat:    CatFile,
			Verb:   "open-denied",
			User:   "al\tice\n",
			App:    42,
			Thread: 9,
			Detail: "path \"with\"\tweird\nchars",
		},
		Seq:  7,
		Time: 123456789,
	}
	out, err := parseRecord(string(in.appendBody(nil)) + "\tdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	in.Hash = "deadbeef"
	if out != in {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	l := New(Config{Mask: CatDeny, Store: NewMemStore()})
	ev := Event{Cat: CatAccess, Verb: "allow", Detail: "x"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(ev)
	}
}

func BenchmarkEmitEnabledDrained(b *testing.B) {
	l := New(Config{Mask: CatAll, ShardCap: 4096, Store: NewMemStore()})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); l.Run(stop) }()
	ev := Event{Cat: CatShell, Verb: "command", User: "alice", Detail: "ls -l"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Thread = int64(i)
		l.Emit(ev)
	}
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkEmitSaturated(b *testing.B) {
	// No drainer: every emission past the ring capacity drops-oldest.
	l := New(Config{Mask: CatAll, Shards: 1, ShardCap: 64, Store: NewMemStore()})
	ev := Event{Cat: CatShell, Verb: "command", Detail: "ls"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(ev)
	}
}
