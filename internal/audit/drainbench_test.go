package audit

import (
	"testing"
	"time"
)

// BenchmarkDrainStorm measures drain (Sync) cost per record under the
// denial-storm shape — identical refused-check events flooding one
// ring — for the legacy per-record chain and the Merkle batch sweep.
// The ns/record metric times only the drain; emission is identical on
// every path. mvmbench §E-audit publishes the same comparison.
func BenchmarkDrainStorm(b *testing.B) {
	storm := Event{Cat: CatDeny, Verb: "deny", User: "mallory", App: 3, Thread: 9,
		Detail: `file "/etc/shadow" "read" domain=file:/local/evil`}
	const stormN = 4096
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"legacy", Config{ChainPerRecord: true}},
		{"merkle16", Config{MerkleBatch: 16}},
		{"merkle64", Config{MerkleBatch: 64}},
		{"merkle256", Config{MerkleBatch: 256}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := tc.cfg
			cfg.Store = NewMemStore()
			cfg.Mask = CatDeny
			cfg.Shards = 1
			cfg.ShardCap = stormN
			l := New(cfg)
			var total time.Duration
			rounds := 0
			for rounds*stormN < b.N {
				for i := 0; i < stormN; i++ {
					l.Emit(storm)
				}
				t0 := time.Now()
				l.Sync()
				total += time.Since(t0)
				rounds++
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(rounds*stormN), "ns/record")
		})
	}
}
