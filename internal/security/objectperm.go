package security

// Object-space permission actions.
const (
	ActionBind   = "bind"
	ActionLookup = "lookup"
	ActionUnbind = "unbind"
)

// ObjectPermission guards the shared-object space (the paper's Section
// 8 direction: "it is very appealing to use shared objects as an
// inter-application communication mechanism"). Targets are object
// names with BasicPermission wildcards ("mail.*"); actions are a
// subset of bind, lookup, unbind.
type ObjectPermission struct {
	Name    string
	actions []string
}

var _ Permission = ObjectPermission{}

// NewObjectPermission returns an ObjectPermission for the object name
// pattern and comma-separated actions.
func NewObjectPermission(name, actions string) ObjectPermission {
	return ObjectPermission{Name: name, actions: canonActions(actions)}
}

// Type implements Permission.
func (ObjectPermission) Type() string { return "object" }

// Target implements Permission.
func (p ObjectPermission) Target() string { return p.Name }

// Actions implements Permission.
func (p ObjectPermission) Actions() string { return joinActions(p.actions) }

// Implies implements Permission.
func (p ObjectPermission) Implies(other Permission) bool {
	o, ok := other.(ObjectPermission)
	if !ok {
		return false
	}
	return wildcardNameImplies(p.Name, o.Name) && actionsSuperset(p.actions, o.actions)
}
