package security

import "strings"

// Key returns the canonical cache key of a permission: its type, target
// and canonicalized action list joined with NUL separators. Two
// permissions with the same key are indistinguishable to the access
// controller (every built-in permission is a value type fully
// determined by these three strings), which makes the key suitable for
// decision caches and the sealed collection index. A nil permission
// canonicalizes to "".
func Key(p Permission) string {
	if p == nil {
		return ""
	}
	typ, target, actions := p.Type(), p.Target(), p.Actions()
	var b strings.Builder
	b.Grow(len(typ) + len(target) + len(actions) + 2)
	b.WriteString(typ)
	b.WriteByte(0)
	b.WriteString(target)
	b.WriteByte(0)
	b.WriteString(actions)
	return b.String()
}
