package security

import (
	"fmt"
	"strings"
	"sync"
)

// Grant is one policy entry. A grant either targets code (matched by
// CodeBase / Signers) or a user (matched by User) — the paper's §5.3
// extension lets a single policy express both:
//
//  1. "All local applications can exercise their respective running
//     users' permissions"       → code grant of UserPermission
//  2. "The backup application can read all files"  → code grant
//  3. "User Alice can access all files in /home/alice" → user grant
type Grant struct {
	// CodeBase restricts the grant to code whose location matches this
	// pattern ("file:/system/-", "http://host/*", exact, or "" = any).
	CodeBase string
	// Signers, if non-empty, restricts the grant to code signed by all
	// of the listed principals.
	Signers []string
	// User, if non-empty, makes this a user grant: the permissions are
	// granted to applications running as that user ("*" = any user).
	User string
	// Perms are the granted permissions.
	Perms []Permission
}

// matchesCode reports whether the grant applies to the code source.
func (g *Grant) matchesCode(cs *CodeSource) bool {
	if g.User != "" {
		return false
	}
	loc := ""
	if cs != nil {
		loc = cs.Location
	}
	if !locationImplies(g.CodeBase, loc) {
		return false
	}
	for _, s := range g.Signers {
		if cs == nil || !containsSigner(cs.Signers, s) {
			return false
		}
	}
	return true
}

// matchesUser reports whether the grant applies to the user.
func (g *Grant) matchesUser(name string) bool {
	if g.User == "" {
		return false
	}
	return g.User == "*" || g.User == name
}

// String renders the grant in policy-file syntax.
func (g *Grant) String() string {
	var head []string
	if g.CodeBase != "" {
		head = append(head, fmt.Sprintf("codeBase %q", g.CodeBase))
	}
	if len(g.Signers) > 0 {
		head = append(head, fmt.Sprintf("signedBy %q", strings.Join(g.Signers, ",")))
	}
	if g.User != "" {
		head = append(head, fmt.Sprintf("user %q", g.User))
	}
	var b strings.Builder
	b.WriteString("grant")
	if len(head) > 0 {
		b.WriteString(" " + strings.Join(head, ", "))
	}
	b.WriteString(" {\n")
	for _, p := range g.Perms {
		b.WriteString("  " + String(p) + ";\n")
	}
	b.WriteString("};")
	return b.String()
}

// Policy is the system-wide security policy: an ordered list of grant
// entries consulted by the AccessController. It is safe for concurrent
// use; grants may be added at runtime (e.g. by the Appletviewer
// delegating permissions to the applets it loads).
type Policy struct {
	mu     sync.RWMutex
	grants []*Grant
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy { return &Policy{} }

// AddGrant appends a grant entry.
func (p *Policy) AddGrant(g *Grant) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants = append(p.grants, g)
}

// Grants returns a snapshot of the policy's grant entries.
func (p *Policy) Grants() []*Grant {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Grant, len(p.grants))
	copy(out, p.grants)
	return out
}

// PermissionsForCode collects the permissions every matching code grant
// confers on the code source.
func (p *Policy) PermissionsForCode(cs *CodeSource) *Permissions {
	out := NewPermissions()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, g := range p.grants {
		if g.matchesCode(cs) {
			for _, perm := range g.Perms {
				out.Add(perm)
			}
		}
	}
	return out
}

// PermissionsForUser collects the permissions granted to the named
// user by user grants.
func (p *Policy) PermissionsForUser(name string) *Permissions {
	out := NewPermissions()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, g := range p.grants {
		if g.matchesUser(name) {
			for _, perm := range g.Perms {
				out.Add(perm)
			}
		}
	}
	return out
}

// DomainFor builds the protection domain for a class of the given code
// source under this policy.
func (p *Policy) DomainFor(name string, cs *CodeSource) *ProtectionDomain {
	return NewProtectionDomain(name, cs, p.PermissionsForCode(cs))
}

// String renders the whole policy in policy-file syntax.
func (p *Policy) String() string {
	var b strings.Builder
	for _, g := range p.Grants() {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}
