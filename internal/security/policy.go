package security

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Grant is one policy entry. A grant either targets code (matched by
// CodeBase / Signers) or a user (matched by User) — the paper's §5.3
// extension lets a single policy express both:
//
//  1. "All local applications can exercise their respective running
//     users' permissions"       → code grant of UserPermission
//  2. "The backup application can read all files"  → code grant
//  3. "User Alice can access all files in /home/alice" → user grant
type Grant struct {
	// CodeBase restricts the grant to code whose location matches this
	// pattern ("file:/system/-", "http://host/*", exact, or "" = any).
	CodeBase string
	// Signers, if non-empty, restricts the grant to code signed by all
	// of the listed principals.
	Signers []string
	// User, if non-empty, makes this a user grant: the permissions are
	// granted to applications running as that user ("*" = any user).
	User string
	// Perms are the granted permissions.
	Perms []Permission
}

// matchesCode reports whether the grant applies to the code source.
func (g *Grant) matchesCode(cs *CodeSource) bool {
	if g.User != "" {
		return false
	}
	loc := ""
	if cs != nil {
		loc = cs.Location
	}
	if !locationImplies(g.CodeBase, loc) {
		return false
	}
	for _, s := range g.Signers {
		if cs == nil || !containsSigner(cs.Signers, s) {
			return false
		}
	}
	return true
}

// matchesUser reports whether the grant applies to the user.
func (g *Grant) matchesUser(name string) bool {
	if g.User == "" {
		return false
	}
	return g.User == "*" || g.User == name
}

// String renders the grant in policy-file syntax.
func (g *Grant) String() string {
	var head []string
	if g.CodeBase != "" {
		head = append(head, fmt.Sprintf("codeBase %q", g.CodeBase))
	}
	if len(g.Signers) > 0 {
		head = append(head, fmt.Sprintf("signedBy %q", strings.Join(g.Signers, ",")))
	}
	if g.User != "" {
		head = append(head, fmt.Sprintf("user %q", g.User))
	}
	var b strings.Builder
	b.WriteString("grant")
	if len(head) > 0 {
		b.WriteString(" " + strings.Join(head, ", "))
	}
	b.WriteString(" {\n")
	for _, p := range g.Perms {
		b.WriteString("  " + String(p) + ";\n")
	}
	b.WriteString("};")
	return b.String()
}

// maxPolicyCacheEntries bounds the per-generation match cache; beyond
// it, lookups fall back to scanning the grant list.
const maxPolicyCacheEntries = 1024

// matchCache memoizes, for one policy generation, which permissions
// the grant list confers on a code source or user. It is immutable and
// replaced copy-on-write; a generation bump orphans it wholesale.
type matchCache struct {
	gen uint64
	// matched maps a subject key ("c\x00"+codesource or "u\x00"+user)
	// to the permissions collected from matching grants. The slices are
	// shared and must be treated as read-only.
	matched map[string][]Permission
}

// Policy is the system-wide security policy: an ordered list of grant
// entries consulted by the AccessController. It is safe for concurrent
// use; grants may be added at runtime (e.g. by the Appletviewer
// delegating permissions to the applets it loads).
//
// The policy carries a generation counter, bumped by AddGrant, that
// policy-backed protection domains and the match cache use to discard
// stale derived state the moment the grant list grows.
type Policy struct {
	mu     sync.RWMutex
	grants []*Grant

	// gen counts AddGrant calls; derived state (domain decision caches,
	// the match cache) is valid only for the generation it was built
	// at.
	gen atomic.Uint64
	// cache is the current-generation match memo.
	cache atomic.Pointer[matchCache]
}

// NewPolicy returns an empty policy.
func NewPolicy() *Policy { return &Policy{} }

// Generation returns the policy's mutation generation. It increases by
// one for every AddGrant; derived caches compare generations to decide
// whether they are stale.
func (p *Policy) Generation() uint64 { return p.gen.Load() }

// AddGrant appends a grant entry and bumps the policy generation,
// invalidating every decision cache derived from earlier generations.
func (p *Policy) AddGrant(g *Grant) {
	p.mu.Lock()
	p.grants = append(p.grants, g)
	p.gen.Add(1)
	p.mu.Unlock()
}

// Grants returns a snapshot of the policy's grant entries.
func (p *Policy) Grants() []*Grant {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*Grant, len(p.grants))
	copy(out, p.grants)
	return out
}

// cachedMatch returns the memoized matched-permission slice for the
// subject key at the current generation.
func (p *Policy) cachedMatch(key string, gen uint64) ([]Permission, bool) {
	c := p.cache.Load()
	if c == nil || c.gen != gen {
		return nil, false
	}
	perms, ok := c.matched[key]
	return perms, ok
}

// storeMatch publishes the matched-permission slice for the subject key
// into the current-generation cache (copy-on-write; lost races and
// full caches drop the memo, never correctness).
func (p *Policy) storeMatch(key string, gen uint64, perms []Permission) {
	old := p.cache.Load()
	var base map[string][]Permission
	if old != nil && old.gen == gen {
		if len(old.matched) >= maxPolicyCacheEntries {
			return
		}
		base = old.matched
	}
	matched := make(map[string][]Permission, len(base)+1)
	for k, v := range base {
		matched[k] = v
	}
	matched[key] = perms
	p.cache.CompareAndSwap(old, &matchCache{gen: gen, matched: matched})
}

// matchedForCode collects (or recalls) the permissions every matching
// code grant confers on the code source. The returned slice is shared:
// callers must not mutate it.
func (p *Policy) matchedForCode(cs *CodeSource) []Permission {
	gen := p.gen.Load()
	key := "c\x00" + cs.cacheKey()
	if perms, ok := p.cachedMatch(key, gen); ok {
		return perms
	}
	p.mu.RLock()
	gen = p.gen.Load() // stable while the read lock pins writers out
	var collected []Permission
	for _, g := range p.grants {
		if g.matchesCode(cs) {
			collected = append(collected, g.Perms...)
		}
	}
	p.mu.RUnlock()
	p.storeMatch(key, gen, collected)
	return collected
}

// matchedForUser is matchedForCode for user grants.
func (p *Policy) matchedForUser(name string) []Permission {
	gen := p.gen.Load()
	key := "u\x00" + name
	if perms, ok := p.cachedMatch(key, gen); ok {
		return perms
	}
	p.mu.RLock()
	gen = p.gen.Load()
	var collected []Permission
	for _, g := range p.grants {
		if g.matchesUser(name) {
			collected = append(collected, g.Perms...)
		}
	}
	p.mu.RUnlock()
	p.storeMatch(key, gen, collected)
	return collected
}

// PermissionsForCode collects the permissions every matching code grant
// confers on the code source. The grant list is scanned (or recalled
// from the generation cache) under a single read-lock acquisition and
// the collection is built in one shot, without per-Add locking.
func (p *Policy) PermissionsForCode(cs *CodeSource) *Permissions {
	matched := p.matchedForCode(cs)
	// Copy: the matched slice is shared with the cache, while the
	// returned collection is the caller's to mutate.
	out := make([]Permission, len(matched))
	copy(out, matched)
	return newPermissionsFrom(out)
}

// PermissionsForUser collects the permissions granted to the named
// user by user grants.
func (p *Policy) PermissionsForUser(name string) *Permissions {
	matched := p.matchedForUser(name)
	out := make([]Permission, len(matched))
	copy(out, matched)
	return newPermissionsFrom(out)
}

// DomainFor builds the protection domain for a class of the given code
// source under this policy. The returned domain is policy-backed: it
// observes the generation counter and re-derives its effective
// permissions when grants are added after class definition.
func (p *Policy) DomainFor(name string, cs *CodeSource) *ProtectionDomain {
	gen := p.gen.Load()
	perms := p.PermissionsForCode(cs)
	d := NewProtectionDomain(name, cs, perms)
	d.policy = p
	// Seed the decision cache at the snapshot generation so the first
	// check does not re-derive what was just computed.
	d.state.Store(&domainState{
		gen:           gen,
		permsVer:      perms.version.Load(),
		perms:         perms,
		exercisesUser: d.ExercisesUser,
	})
	return d
}

// String renders the whole policy in policy-file syntax.
func (p *Policy) String() string {
	var b strings.Builder
	for _, g := range p.Grants() {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}
