package security

import (
	"fmt"
	"strings"
	"unicode"
)

// ParsePolicy parses a policy file in (a subset of) JDK 1.2 policy
// syntax, extended with the paper's "user" clause:
//
//	// comment
//	grant codeBase "file:/system/-", signedBy "sun" {
//	    permission file "/-", "read,write";
//	    permission runtime "exitVM";
//	};
//	grant user "alice" {
//	    permission file "/home/alice/-", "read,write,delete";
//	};
//	grant {
//	    permission user;        // all code may exercise user permissions
//	};
//
// Recognized permission type names are the Type() strings of the
// permission implementations (file, socket, runtime, property, reflect,
// awt, user, all) plus their java.* aliases (java.io.FilePermission,
// java.net.SocketPermission, java.lang.RuntimePermission,
// java.util.PropertyPermission).
func ParsePolicy(text string) (*Policy, error) {
	toks, err := tokenizePolicy(text)
	if err != nil {
		return nil, err
	}
	p := &policyParser{toks: toks}
	policy := NewPolicy()
	for !p.done() {
		g, err := p.parseGrant()
		if err != nil {
			return nil, err
		}
		policy.AddGrant(g)
	}
	return policy, nil
}

// MustParsePolicy parses a policy file and panics on error. Intended
// for static policy literals in program initialization.
func MustParsePolicy(text string) *Policy {
	p, err := ParsePolicy(text)
	if err != nil {
		panic(fmt.Sprintf("security: parse policy: %v", err))
	}
	return p
}

type policyToken struct {
	kind string // "word", "string", "punct"
	text string
	line int
}

func tokenizePolicy(text string) ([]policyToken, error) {
	var toks []policyToken
	line := 1
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(text) && text[i+1] == '/':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(text) && text[i+1] == '*':
			i += 2
			for i+1 < len(text) && !(text[i] == '*' && text[i+1] == '/') {
				if text[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(text) {
				return nil, fmt.Errorf("security: policy line %d: unterminated block comment", line)
			}
			i += 2
		case c == '"':
			j := i + 1
			for j < len(text) && text[j] != '"' {
				if text[j] == '\n' {
					return nil, fmt.Errorf("security: policy line %d: unterminated string", line)
				}
				j++
			}
			if j >= len(text) {
				return nil, fmt.Errorf("security: policy line %d: unterminated string", line)
			}
			toks = append(toks, policyToken{kind: "string", text: text[i+1 : j], line: line})
			i = j + 1
		case c == '{' || c == '}' || c == ';' || c == ',':
			toks = append(toks, policyToken{kind: "punct", text: string(c), line: line})
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(text) && (unicode.IsLetter(rune(text[j])) || unicode.IsDigit(rune(text[j])) || text[j] == '.' || text[j] == '_') {
				j++
			}
			toks = append(toks, policyToken{kind: "word", text: text[i:j], line: line})
			i = j
		default:
			return nil, fmt.Errorf("security: policy line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

type policyParser struct {
	toks []policyToken
	pos  int
}

func (p *policyParser) done() bool { return p.pos >= len(p.toks) }

func (p *policyParser) peek() policyToken {
	if p.done() {
		return policyToken{kind: "eof", text: "<eof>"}
	}
	return p.toks[p.pos]
}

func (p *policyParser) next() policyToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *policyParser) expect(kind, text string) (policyToken, error) {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("security: policy line %d: expected %s %q, got %q", t.line, kind, text, t.text)
	}
	return t, nil
}

// parseGrant parses: grant [clauses] { permission...; } ;
func (p *policyParser) parseGrant() (*Grant, error) {
	if _, err := p.expect("word", "grant"); err != nil {
		return nil, err
	}
	g := &Grant{}
	for p.peek().kind == "word" {
		clause := p.next()
		val, err := p.expect("string", "")
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(clause.text) {
		case "codebase":
			g.CodeBase = val.text
		case "signedby":
			for _, s := range strings.Split(val.text, ",") {
				if s = strings.TrimSpace(s); s != "" {
					g.Signers = append(g.Signers, s)
				}
			}
		case "user", "principal":
			g.User = val.text
		default:
			return nil, fmt.Errorf("security: policy line %d: unknown grant clause %q", clause.line, clause.text)
		}
		if p.peek().text == "," {
			p.next()
		}
	}
	if _, err := p.expect("punct", "{"); err != nil {
		return nil, err
	}
	for p.peek().text != "}" {
		perm, err := p.parsePermission()
		if err != nil {
			return nil, err
		}
		g.Perms = append(g.Perms, perm)
	}
	if _, err := p.expect("punct", "}"); err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	return g, nil
}

// parsePermission parses: permission <type> ["target" [, "actions"]] ;
func (p *policyParser) parsePermission() (Permission, error) {
	if _, err := p.expect("word", "permission"); err != nil {
		return nil, err
	}
	typ, err := p.expect("word", "")
	if err != nil {
		return nil, err
	}
	var target, actions string
	if p.peek().kind == "string" {
		target = p.next().text
		if p.peek().text == "," {
			p.next()
			act, err := p.expect("string", "")
			if err != nil {
				return nil, err
			}
			actions = act.text
		}
	}
	if _, err := p.expect("punct", ";"); err != nil {
		return nil, err
	}
	perm, err := BuildPermission(typ.text, target, actions)
	if err != nil {
		return nil, fmt.Errorf("security: policy line %d: %w", typ.line, err)
	}
	return perm, nil
}

// BuildPermission constructs a permission from its type name, target
// and actions, accepting both short names and java.* class aliases.
func BuildPermission(typeName, target, actions string) (Permission, error) {
	switch strings.ToLower(typeName) {
	case "file", "java.io.filepermission":
		if target == "" {
			return nil, fmt.Errorf("file permission requires a target")
		}
		return NewFilePermission(target, actions), nil
	case "socket", "java.net.socketpermission":
		if target == "" {
			return nil, fmt.Errorf("socket permission requires a target")
		}
		return NewSocketPermission(target, actions), nil
	case "runtime", "java.lang.runtimepermission":
		if target == "" {
			return nil, fmt.Errorf("runtime permission requires a target")
		}
		return NewRuntimePermission(target), nil
	case "property", "java.util.propertypermission":
		if target == "" {
			return nil, fmt.Errorf("property permission requires a target")
		}
		return NewPropertyPermission(target, actions), nil
	case "reflect", "java.lang.reflect.reflectpermission":
		if target == "" {
			target = "accessDeclaredMembers"
		}
		return NewReflectPermission(target), nil
	case "awt", "java.awt.awtpermission":
		if target == "" {
			return nil, fmt.Errorf("awt permission requires a target")
		}
		return NewAWTPermission(target), nil
	case "object", "objectpermission":
		if target == "" {
			return nil, fmt.Errorf("object permission requires a target")
		}
		return NewObjectPermission(target, actions), nil
	case "user", "userpermission":
		return UserPermission{}, nil
	case "all", "java.security.allpermission":
		return AllPermission{}, nil
	default:
		return nil, fmt.Errorf("unknown permission type %q", typeName)
	}
}
