package security

import (
	"fmt"
	"testing"

	"mpj/internal/vm"
)

// Microbenchmarks for the access-control fast path. The end-to-end
// numbers (stack depth × policy shape) live in the repository root's
// BenchmarkE8*; these isolate the individual layers: the sealed
// collection index, the per-domain decision cache, the policy match
// cache, and the full walk with domain deduplication.

// BenchmarkSealedImplies measures repeated Implies against collections
// of growing size; the decision memo answers every iteration after the
// first.
func BenchmarkSealedImplies(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("perms%d", n), func(b *testing.B) {
			c := NewPermissions()
			for i := 0; i < n; i++ {
				c.Add(NewFilePermission(fmt.Sprintf("/data/%d/-", i), "read"))
			}
			probe := NewFilePermission(fmt.Sprintf("/data/%d/x", n/2), "read")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !c.Implies(probe) {
					b.Fatal("unexpected denial")
				}
			}
		})
	}
}

// BenchmarkSealedImpliesCold measures the cold path: a fresh collection
// every iteration, so each query pays for building the typed index.
func BenchmarkSealedImpliesCold(b *testing.B) {
	perms := make([]Permission, 16)
	for i := range perms {
		perms[i] = NewFilePermission(fmt.Sprintf("/data/%d/-", i), "read")
	}
	probe := NewFilePermission("/data/8/x", "read")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewPermissions(perms...)
		if !c.Implies(probe) {
			b.Fatal("unexpected denial")
		}
	}
}

// BenchmarkDomainDecisionCache measures the per-domain decision cache:
// one warmed domain answering the same permission.
func BenchmarkDomainDecisionCache(b *testing.B) {
	pol := MustParsePolicy(`
grant codeBase "file:/apps/-" { permission file "/data/-", "read"; };
`)
	d := pol.DomainFor("app", NewCodeSource("file:/apps/app"))
	probe := NewFilePermission("/data/x", "read")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Implies(probe) {
			b.Fatal("unexpected denial")
		}
	}
}

// BenchmarkPermissionsForCode measures policy evaluation with a warm
// match cache (the repeated-class-load path) at growing grant counts.
func BenchmarkPermissionsForCode(b *testing.B) {
	for _, grants := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("grants%d", grants), func(b *testing.B) {
			pol := NewPolicy()
			for i := 0; i < grants; i++ {
				pol.AddGrant(&Grant{
					CodeBase: fmt.Sprintf("file:/apps/app%d", i),
					Perms:    []Permission{NewFilePermission(fmt.Sprintf("/data/%d/-", i), "read")},
				})
			}
			cs := NewCodeSource(fmt.Sprintf("file:/apps/app%d", grants/2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if pol.PermissionsForCode(cs).Len() != 1 {
					b.Fatal("wrong match count")
				}
			}
		})
	}
}

// BenchmarkCheckPermissionDedup measures the full stack walk at depth
// 64 where every frame shares one domain — the fast path's domain
// deduplication collapses the walk to one cached decision.
func BenchmarkCheckPermissionDedup(b *testing.B) {
	pol := MustParsePolicy(`
grant codeBase "file:/apps/-" { permission file "/data/-", "read"; };
`)
	d := pol.DomainFor("app", NewCodeSource("file:/apps/app"))
	probe := NewFilePermission("/data/x", "read")

	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)
	done := make(chan struct{})
	th, err := v.SpawnThread(vm.ThreadSpec{Group: v.MainGroup(), Name: "bench", Run: func(t *vm.Thread) {
		for i := 0; i < 64; i++ {
			t.PushFrame(vm.Frame{Class: "C", Domain: d})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := CheckPermission(t, probe); err != nil {
				b.Errorf("unexpected denial: %v", err)
				break
			}
		}
		b.StopTimer()
		close(done)
	}})
	if err != nil {
		b.Fatal(err)
	}
	<-done
	th.Join()
}
