package security

import (
	"fmt"
	"strings"
	"sync/atomic"

	"mpj/internal/vm"
)

// CodeSource characterizes where code came from: its origin location
// (a URL-like string such as "file:/system/shell" or
// "http://applets.example.org/game") and the set of principals that
// signed it. Security policy is expressed in terms of code sources
// (Section 3.3 of the paper).
type CodeSource struct {
	// Location is the origin URL of the code. Empty means "unknown".
	Location string
	// Signers lists the names of principals whose signatures the code
	// carries.
	Signers []string
}

// NewCodeSource returns a code source for location signed by signers.
func NewCodeSource(location string, signers ...string) *CodeSource {
	return &CodeSource{Location: location, Signers: signers}
}

// String implements fmt.Stringer.
func (cs *CodeSource) String() string {
	if cs == nil {
		return "<no code source>"
	}
	if len(cs.Signers) == 0 {
		return cs.Location
	}
	return fmt.Sprintf("%s signedBy %s", cs.Location, strings.Join(cs.Signers, ","))
}

// cacheKey returns a string identifying the code source for policy
// match caching. Signer order is preserved; two orderings of the same
// signer set hash to different entries, which is merely a duplicate.
func (cs *CodeSource) cacheKey() string {
	if cs == nil {
		return "\x00nil"
	}
	if len(cs.Signers) == 0 {
		return cs.Location
	}
	return cs.Location + "\x00" + strings.Join(cs.Signers, "\x00")
}

// SignedBy reports whether the code source carries a signature by the
// given principal.
func (cs *CodeSource) SignedBy(principal string) bool {
	if cs == nil {
		return false
	}
	return containsSigner(cs.Signers, principal)
}

func containsSigner(signers []string, principal string) bool {
	for _, s := range signers {
		if s == principal {
			return true
		}
	}
	return false
}

// locationImplies implements codeBase matching with FilePermission-like
// wildcards: "loc/-" matches anything beneath loc, "loc/*" matches
// direct children, "" matches everything, otherwise exact match.
func locationImplies(pattern, loc string) bool {
	if pattern == "" {
		return true
	}
	switch {
	case strings.HasSuffix(pattern, "/-"):
		base := pattern[:len(pattern)-2]
		return loc == base || strings.HasPrefix(loc, base+"/")
	case strings.HasSuffix(pattern, "/*"):
		base := pattern[:len(pattern)-2]
		if !strings.HasPrefix(loc, base+"/") {
			return false
		}
		return !strings.Contains(loc[len(base)+1:], "/")
	default:
		return pattern == loc
	}
}

// maxDomainDecisions caps the per-domain decision cache so an adversary
// probing many distinct permissions cannot grow it without bound; once
// full, further decisions are computed but not memoized.
const maxDomainDecisions = 256

// domainState is an immutable snapshot of a domain's effective static
// permissions plus the decisions derived from them. It is replaced
// wholesale (copy-on-write) when the decision memo grows, when the
// domain's permission collection mutates, or — for policy-backed
// domains — when the policy generation advances.
type domainState struct {
	// gen is the policy generation this state reflects (0 and unused
	// for detached domains).
	gen uint64
	// permsVer is the version of perms at build time; a direct Add to
	// the collection invalidates the memoized decisions.
	permsVer uint64
	// perms is the effective static permission set.
	perms *Permissions
	// exercisesUser mirrors ProtectionDomain.ExercisesUser, re-derived
	// on policy refresh (a runtime grant may confer UserPermission).
	exercisesUser bool
	// decisions memoizes static implication results (positive and
	// negative) by canonical permission Key.
	decisions map[string]bool
}

// ProtectionDomain associates a code source with the permissions that
// policy statically grants it. Every class belongs to exactly one
// protection domain; the AccessController intersects the domains on a
// thread's call stack.
//
// Domains built by Policy.DomainFor are policy-backed: they watch the
// policy's generation counter and re-derive their effective permission
// set when grants are added at runtime (the Appletviewer's delegation
// path), so a cached denial never outlives the grant that would lift
// it. Domains built directly via NewProtectionDomain are detached
// snapshots, exactly as before.
type ProtectionDomain struct {
	// Name identifies the domain for diagnostics (usually the defining
	// class or program name).
	Name string
	// Source is the code source of the domain's classes.
	Source *CodeSource
	// Static holds the permissions granted to the code source by
	// policy at construction time.
	Static *Permissions
	// ExercisesUser is true when policy grants the code source
	// UserPermission: the domain may additionally exercise the
	// permissions of the application's running user (Section 5.3).
	ExercisesUser bool

	// policy, when non-nil, backs the domain: the effective permission
	// set tracks the policy across generations.
	policy *Policy
	// state is the current decision-cache snapshot.
	state atomic.Pointer[domainState]
}

var _ vm.Domain = (*ProtectionDomain)(nil)

// NewProtectionDomain constructs a detached domain. The ExercisesUser
// flag is derived from the permission set.
func NewProtectionDomain(name string, cs *CodeSource, perms *Permissions) *ProtectionDomain {
	if perms == nil {
		perms = NewPermissions()
	}
	return &ProtectionDomain{
		Name:          name,
		Source:        cs,
		Static:        perms,
		ExercisesUser: perms.Implies(UserPermission{}),
	}
}

// DomainName implements vm.Domain.
func (d *ProtectionDomain) DomainName() string { return d.Name }

// String implements fmt.Stringer.
func (d *ProtectionDomain) String() string {
	return fmt.Sprintf("ProtectionDomain[%s source=%s]", d.Name, d.Source)
}

// currentState returns a valid decision-cache snapshot, rebuilding it
// if the underlying permissions mutated or the backing policy gained a
// grant since the last build. Lock-free on the hot path: one atomic
// load plus (for policy-backed domains) one atomic generation read.
func (d *ProtectionDomain) currentState() *domainState {
	var gen uint64
	if d.policy != nil {
		gen = d.policy.Generation()
	}
	st := d.state.Load()
	if st != nil && st.gen == gen && st.permsVer == st.perms.version.Load() {
		return st
	}
	perms := d.Static
	exercises := d.ExercisesUser
	switch {
	case st != nil && st.gen == gen:
		// Same generation: only the collection itself mutated (a direct
		// Add). Keep it and just drop the memoized decisions.
		perms = st.perms
		exercises = st.exercisesUser
	case d.policy != nil:
		// Re-derive the effective grant set at the current generation.
		perms = d.policy.PermissionsForCode(d.Source)
		exercises = perms.Implies(UserPermission{})
	}
	st = &domainState{
		gen:           gen,
		permsVer:      perms.version.Load(),
		perms:         perms,
		exercisesUser: exercises,
		decisions:     nil,
	}
	d.state.Store(st)
	return st
}

// impliesKeyed reports whether the domain's effective static permission
// set implies perm, whose canonical Key the caller has already
// computed. Repeated checks of the same permission are answered from
// the per-domain decision cache: an atomic load plus a map hit.
func (d *ProtectionDomain) impliesKeyed(key string, perm Permission) bool {
	st := d.currentState()
	if v, ok := st.decisions[key]; ok {
		return v
	}
	v := st.perms.impliesKeyed(key, perm)
	d.memoize(st, key, v)
	return v
}

// Implies reports whether the domain's effective static permission set
// implies perm. This is the decision the AccessController combines
// across stack frames; it does not consult user permissions.
func (d *ProtectionDomain) Implies(perm Permission) bool {
	return d.impliesKeyed(Key(perm), perm)
}

// memoize publishes a copy of st with one more cached decision. A lost
// CAS race simply drops the memo; correctness never depends on it.
func (d *ProtectionDomain) memoize(st *domainState, key string, v bool) {
	if len(st.decisions) >= maxDomainDecisions {
		return
	}
	decisions := make(map[string]bool, len(st.decisions)+1)
	for k, dv := range st.decisions {
		decisions[k] = dv
	}
	decisions[key] = v
	next := &domainState{
		gen:           st.gen,
		permsVer:      st.permsVer,
		perms:         st.perms,
		exercisesUser: st.exercisesUser,
		decisions:     decisions,
	}
	d.state.CompareAndSwap(st, next)
}

// SystemDomain returns a fully privileged domain for trusted system
// code.
func SystemDomain(name string) *ProtectionDomain {
	return NewProtectionDomain(name, NewCodeSource("file:/system/"+name), NewPermissions(AllPermission{}))
}
