package security

import (
	"fmt"
	"strings"

	"mpj/internal/vm"
)

// CodeSource characterizes where code came from: its origin location
// (a URL-like string such as "file:/system/shell" or
// "http://applets.example.org/game") and the set of principals that
// signed it. Security policy is expressed in terms of code sources
// (Section 3.3 of the paper).
type CodeSource struct {
	// Location is the origin URL of the code. Empty means "unknown".
	Location string
	// Signers lists the names of principals whose signatures the code
	// carries.
	Signers []string
}

// NewCodeSource returns a code source for location signed by signers.
func NewCodeSource(location string, signers ...string) *CodeSource {
	return &CodeSource{Location: location, Signers: signers}
}

// String implements fmt.Stringer.
func (cs *CodeSource) String() string {
	if cs == nil {
		return "<no code source>"
	}
	if len(cs.Signers) == 0 {
		return cs.Location
	}
	return fmt.Sprintf("%s signedBy %s", cs.Location, strings.Join(cs.Signers, ","))
}

// SignedBy reports whether the code source carries a signature by the
// given principal.
func (cs *CodeSource) SignedBy(principal string) bool {
	if cs == nil {
		return false
	}
	return containsSigner(cs.Signers, principal)
}

func containsSigner(signers []string, principal string) bool {
	for _, s := range signers {
		if s == principal {
			return true
		}
	}
	return false
}

// locationImplies implements codeBase matching with FilePermission-like
// wildcards: "loc/-" matches anything beneath loc, "loc/*" matches
// direct children, "" matches everything, otherwise exact match.
func locationImplies(pattern, loc string) bool {
	if pattern == "" {
		return true
	}
	switch {
	case strings.HasSuffix(pattern, "/-"):
		base := pattern[:len(pattern)-2]
		return loc == base || strings.HasPrefix(loc, base+"/")
	case strings.HasSuffix(pattern, "/*"):
		base := pattern[:len(pattern)-2]
		if !strings.HasPrefix(loc, base+"/") {
			return false
		}
		return !strings.Contains(loc[len(base)+1:], "/")
	default:
		return pattern == loc
	}
}

// ProtectionDomain associates a code source with the permissions that
// policy statically grants it. Every class belongs to exactly one
// protection domain; the AccessController intersects the domains on a
// thread's call stack.
type ProtectionDomain struct {
	// Name identifies the domain for diagnostics (usually the defining
	// class or program name).
	Name string
	// Source is the code source of the domain's classes.
	Source *CodeSource
	// Static holds the permissions granted to the code source by
	// policy.
	Static *Permissions
	// ExercisesUser is true when policy grants the code source
	// UserPermission: the domain may additionally exercise the
	// permissions of the application's running user (Section 5.3).
	ExercisesUser bool
}

var _ vm.Domain = (*ProtectionDomain)(nil)

// NewProtectionDomain constructs a domain. The ExercisesUser flag is
// derived from the permission set.
func NewProtectionDomain(name string, cs *CodeSource, perms *Permissions) *ProtectionDomain {
	if perms == nil {
		perms = NewPermissions()
	}
	return &ProtectionDomain{
		Name:          name,
		Source:        cs,
		Static:        perms,
		ExercisesUser: perms.Implies(UserPermission{}),
	}
}

// DomainName implements vm.Domain.
func (d *ProtectionDomain) DomainName() string { return d.Name }

// String implements fmt.Stringer.
func (d *ProtectionDomain) String() string {
	return fmt.Sprintf("ProtectionDomain[%s source=%s]", d.Name, d.Source)
}

// SystemDomain returns a fully privileged domain for trusted system
// code.
func SystemDomain(name string) *ProtectionDomain {
	return NewProtectionDomain(name, NewCodeSource("file:/system/"+name), NewPermissions(AllPermission{}))
}
