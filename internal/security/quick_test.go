package security

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property-based tests over the permission lattice using testing/quick.
// The generators build structured targets so the interesting wildcard
// branches are actually exercised.

var quickConfig = &quick.Config{MaxCount: 2000}

// genPath builds a small random absolute path (possibly with a
// wildcard suffix) from a tiny alphabet so collisions are common.
func genPath(r *rand.Rand, allowWildcard bool) string {
	segs := r.Intn(4) + 1
	parts := make([]string, 0, segs)
	for i := 0; i < segs; i++ {
		parts = append(parts, string(rune('a'+r.Intn(3))))
	}
	p := "/" + strings.Join(parts, "/")
	if allowWildcard {
		switch r.Intn(4) {
		case 0:
			p += "/*"
		case 1:
			p += "/-"
		}
	}
	return p
}

func genActions(r *rand.Rand) string {
	all := []string{ActionRead, ActionWrite, ActionDelete, ActionExecute}
	n := r.Intn(len(all)) + 1
	picked := make([]string, 0, n)
	for i := 0; i < n; i++ {
		picked = append(picked, all[r.Intn(len(all))])
	}
	return strings.Join(picked, ",")
}

// TestQuickFilePermissionReflexive: every file permission implies
// itself.
func TestQuickFilePermissionReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewFilePermission(genPath(r, true), genActions(r))
		return p.Implies(p)
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilePermissionTransitive: implies is transitive over file
// permissions (p⇒q and q⇒r gives p⇒r).
func TestQuickFilePermissionTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewFilePermission(genPath(r, true), genActions(r))
		q := NewFilePermission(genPath(r, true), genActions(r))
		s := NewFilePermission(genPath(r, true), genActions(r))
		if p.Implies(q) && q.Implies(s) {
			return p.Implies(s)
		}
		return true
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickActionMonotonic: dropping actions from the query never turns
// an allow into a deny.
func TestQuickActionMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewFilePermission(genPath(r, true), "read,write,delete,execute")
		path := genPath(r, false)
		full := NewFilePermission(path, genActions(r))
		if !p.Implies(full) {
			return true
		}
		// any single action subset must also be implied
		for _, a := range strings.Split(full.Actions(), ",") {
			if !p.Implies(NewFilePermission(path, a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecursiveDominatesChildren: "/x/-" implies everything
// "/x/*" implies, for any x.
func TestQuickRecursiveDominatesChildren(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := genPath(r, false)
		rec := NewFilePermission(base+"/-", "read")
		chi := NewFilePermission(base+"/*", "read")
		probe := NewFilePermission(genPath(r, false), "read")
		if chi.Implies(probe) && !rec.Implies(probe) {
			t.Logf("base=%q probe=%q", base, probe.Path)
			return false
		}
		return rec.Implies(chi)
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSocketPortRange: a permission for a port range implies every
// single port inside it and none outside.
func TestQuickSocketPortRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := r.Intn(1000)
		hi := lo + r.Intn(1000)
		p := NewSocketPermission("host:"+itoa(lo)+"-"+itoa(hi), "connect")
		inside := lo + r.Intn(hi-lo+1)
		outside := hi + 1 + r.Intn(100)
		if !p.Implies(NewSocketPermission("host:"+itoa(inside), "connect")) {
			return false
		}
		return !p.Implies(NewSocketPermission("host:"+itoa(outside), "connect"))
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestQuickCollectionUnionSound: the union of two collections implies
// exactly what at least one side implies.
func TestQuickCollectionUnionSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewPermissions()
		b := NewPermissions()
		for i := 0; i < r.Intn(4); i++ {
			a.Add(NewFilePermission(genPath(r, true), genActions(r)))
		}
		for i := 0; i < r.Intn(4); i++ {
			b.Add(NewFilePermission(genPath(r, true), genActions(r)))
		}
		u := Union(a, b)
		probe := NewFilePermission(genPath(r, false), genActions(r))
		return u.Implies(probe) == (a.Implies(probe) || b.Implies(probe))
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPolicyRoundtrip: rendering a policy to text and re-parsing
// it yields equivalent permission decisions.
func TestQuickPolicyRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pol := NewPolicy()
		for i := 0; i < r.Intn(3)+1; i++ {
			g := &Grant{}
			if r.Intn(2) == 0 {
				g.CodeBase = "file:/apps/app" + itoa(r.Intn(3))
			} else {
				g.User = string(rune('a' + r.Intn(3)))
			}
			for j := 0; j < r.Intn(3)+1; j++ {
				g.Perms = append(g.Perms, NewFilePermission(genPath(r, true), genActions(r)))
			}
			pol.AddGrant(g)
		}
		text := pol.String()
		re, err := ParsePolicy(text)
		if err != nil {
			t.Logf("reparse failed for:\n%s\nerr: %v", text, err)
			return false
		}
		cs := NewCodeSource("file:/apps/app" + itoa(r.Intn(3)))
		user := string(rune('a' + r.Intn(3)))
		probe := NewFilePermission(genPath(r, false), "read")
		if pol.PermissionsForCode(cs).Implies(probe) != re.PermissionsForCode(cs).Implies(probe) {
			return false
		}
		return pol.PermissionsForUser(user).Implies(probe) == re.PermissionsForUser(user).Implies(probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGrantMonotonic: adding a grant to a policy never turns a
// previously-allowed code-source decision into a denial.
func TestQuickGrantMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pol := NewPolicy()
		for i := 0; i < r.Intn(4)+1; i++ {
			pol.AddGrant(&Grant{
				CodeBase: "file:/apps/app" + itoa(r.Intn(3)),
				Perms:    []Permission{NewFilePermission(genPath(r, true), genActions(r))},
			})
		}
		cs := NewCodeSource("file:/apps/app" + itoa(r.Intn(3)))
		probe := NewFilePermission(genPath(r, false), "read")
		before := pol.PermissionsForCode(cs).Implies(probe)

		pol.AddGrant(&Grant{
			CodeBase: "file:/apps/app" + itoa(r.Intn(3)),
			Perms:    []Permission{NewFilePermission(genPath(r, true), genActions(r))},
		})
		after := pol.PermissionsForCode(cs).Implies(probe)
		return !before || after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
