package security

import (
	gopath "path"
	"strings"
)

// File permission actions.
const (
	ActionRead    = "read"
	ActionWrite   = "write"
	ActionDelete  = "delete"
	ActionExecute = "execute"
)

// FilePermission guards access to filesystem paths, with Java's
// java.io.FilePermission path semantics:
//
//   - "/a/b"        the file or directory /a/b itself
//   - "/a/*"        all direct children of /a (not /a itself)
//   - "/a/-"        everything beneath /a, recursively (not /a itself)
//   - "<<ALL FILES>>" every path
//
// Actions are a comma-separated subset of read, write, delete, execute.
type FilePermission struct {
	Path    string
	actions []string
}

var _ Permission = FilePermission{}

// AllFiles is the wildcard path matching every file.
const AllFiles = "<<ALL FILES>>"

// NewFilePermission returns a FilePermission for path and actions.
// Paths are cleaned; trailing "/*" and "/-" wildcards are preserved.
func NewFilePermission(path, actions string) FilePermission {
	return FilePermission{Path: cleanPermPath(path), actions: canonActions(actions)}
}

// cleanPermPath normalizes a permission path while preserving the
// trailing wildcard component.
func cleanPermPath(p string) string {
	if p == AllFiles {
		return p
	}
	cleanBase := func(base string) string {
		if base == "" {
			return ""
		}
		c := gopath.Clean(base)
		if c == "/" {
			return ""
		}
		return c
	}
	switch {
	case strings.HasSuffix(p, "/*"):
		return cleanBase(p[:len(p)-2]) + "/*"
	case strings.HasSuffix(p, "/-"):
		return cleanBase(p[:len(p)-2]) + "/-"
	default:
		return gopath.Clean(p)
	}
}

// Type implements Permission.
func (FilePermission) Type() string { return "file" }

// Target implements Permission.
func (p FilePermission) Target() string { return p.Path }

// Actions implements Permission.
func (p FilePermission) Actions() string { return joinActions(p.actions) }

// Implies implements Permission.
func (p FilePermission) Implies(other Permission) bool {
	o, ok := other.(FilePermission)
	if !ok {
		return false
	}
	if !actionsSuperset(p.actions, o.actions) {
		return false
	}
	return pathImplies(p.Path, o.Path)
}

// pathImplies reports whether the permission path pattern subsumes the
// other pattern (which may itself be a wildcard).
func pathImplies(pattern, other string) bool {
	if pattern == AllFiles {
		return true
	}
	if other == AllFiles {
		return false
	}
	base, kind := splitWildcard(pattern)
	obase, okind := splitWildcard(other)
	switch kind {
	case wildNone:
		// An exact path implies only itself.
		return okind == wildNone && base == obase
	case wildChildren:
		switch okind {
		case wildNone:
			// "/a/*" implies direct children of /a, not /a itself.
			return obase != base && gopath.Dir(obase) == base
		case wildChildren:
			return obase == base
		default: // a recursive set is never contained in a one-level set
			return false
		}
	default: // wildRecursive
		if okind == wildNone {
			// "/a/-" implies everything strictly beneath /a.
			if base == "/" {
				return obase != "/"
			}
			return strings.HasPrefix(obase, base+"/")
		}
		// "/a/-" implies "/a/-", "/a/*" and any wildcard rooted beneath.
		return base == "/" || obase == base || strings.HasPrefix(obase, base+"/")
	}
}

type wildcardKind int

const (
	wildNone wildcardKind = iota + 1
	wildChildren
	wildRecursive
)

// splitWildcard separates a permission path into its base directory and
// wildcard kind. The base of "/*" and "/-" is "/".
func splitWildcard(p string) (base string, kind wildcardKind) {
	switch {
	case strings.HasSuffix(p, "/*"):
		base, kind = p[:len(p)-2], wildChildren
	case strings.HasSuffix(p, "/-"):
		base, kind = p[:len(p)-2], wildRecursive
	default:
		return p, wildNone
	}
	if base == "" {
		base = "/"
	}
	return base, kind
}
