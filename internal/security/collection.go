package security

import (
	"strings"
	"sync"
)

// Permissions is a heterogeneous, thread-safe permission collection.
// The zero value is an empty collection ready for use.
type Permissions struct {
	mu    sync.RWMutex
	perms []Permission
	all   bool // fast path: collection contains AllPermission
}

// NewPermissions returns a collection pre-populated with perms.
func NewPermissions(perms ...Permission) *Permissions {
	c := &Permissions{}
	for _, p := range perms {
		c.Add(p)
	}
	return c
}

// Add inserts a permission into the collection.
func (c *Permissions) Add(p Permission) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := p.(AllPermission); ok {
		c.all = true
	}
	c.perms = append(c.perms, p)
}

// AddAll inserts every permission of other into the collection.
func (c *Permissions) AddAll(other *Permissions) {
	if other == nil {
		return
	}
	for _, p := range other.Elements() {
		c.Add(p)
	}
}

// Implies reports whether any contained permission implies p.
func (c *Permissions) Implies(p Permission) bool {
	if c == nil {
		return false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.all {
		return true
	}
	for _, held := range c.perms {
		if held.Implies(p) {
			return true
		}
	}
	return false
}

// Elements returns a snapshot of the contained permissions.
func (c *Permissions) Elements() []Permission {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Permission, len(c.perms))
	copy(out, c.perms)
	return out
}

// Len returns the number of contained permissions.
func (c *Permissions) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.perms)
}

// Union returns a new collection holding the permissions of both c and
// other. Either argument may be nil.
func Union(c, other *Permissions) *Permissions {
	out := NewPermissions()
	out.AddAll(c)
	out.AddAll(other)
	return out
}

// String lists the collection in policy-file syntax, one permission per
// line.
func (c *Permissions) String() string {
	var b strings.Builder
	for _, p := range c.Elements() {
		b.WriteString("  ")
		b.WriteString(String(p))
		b.WriteString(";\n")
	}
	return b.String()
}
