package security

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Permissions is a heterogeneous, thread-safe permission collection.
// The zero value is an empty collection ready for use.
//
// Reads are served from an immutable "sealed" snapshot published via an
// atomic pointer: the hot Implies path takes no lock and consults a
// typed index (permissions partitioned by Type(), plus an exact-match
// map keyed by canonical permission Key) instead of linearly scanning a
// heterogeneous slice. Mutations bump a version counter; the next read
// reseals the snapshot lazily.
type Permissions struct {
	mu    sync.RWMutex
	perms []Permission
	all   bool // fast path: collection contains AllPermission

	// version counts mutations; a sealed snapshot is valid only while
	// its recorded version matches.
	version atomic.Uint64
	// sealed is the last published immutable index (nil or stale after
	// a mutation; reads rebuild it on demand).
	sealed atomic.Pointer[permIndex]
}

// maxIndexDecisions caps the per-snapshot decision memo; once full,
// further queries are computed but not memoized.
const maxIndexDecisions = 512

// permIndex is an immutable snapshot of a Permissions collection,
// indexed for O(1)-ish implication checks. It relies on the Permission
// contract that permissions of different types never imply each other;
// the sole exception, AllPermission, is pre-folded into the all flag.
type permIndex struct {
	version uint64
	all     bool
	// exact maps the canonical Key of a held permission to that
	// permission: a query with an identical key is answered by a single
	// map hit plus one Implies call.
	exact map[string]Permission
	// byType partitions the held permissions by Type(), so a query only
	// scans candidates that could possibly imply it.
	byType map[string][]Permission
	// decisions memoizes query outcomes (positive and negative) by
	// canonical Key; it grows copy-on-write with the snapshot.
	decisions map[string]bool
}

var emptyIndex = &permIndex{}

// NewPermissions returns a collection pre-populated with perms.
func NewPermissions(perms ...Permission) *Permissions {
	c := &Permissions{}
	for _, p := range perms {
		c.Add(p)
	}
	return c
}

// newPermissionsFrom builds a collection from an already-collected
// slice in one shot, without per-Add lock traffic. It takes ownership
// of perms; nil entries are dropped (as Add drops them).
func newPermissionsFrom(perms []Permission) *Permissions {
	filtered := perms[:0]
	c := &Permissions{}
	for _, p := range perms {
		if p == nil {
			continue
		}
		if _, ok := p.(AllPermission); ok {
			c.all = true
		}
		filtered = append(filtered, p)
	}
	c.perms = filtered
	return c
}

// Add inserts a permission into the collection.
func (c *Permissions) Add(p Permission) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := p.(AllPermission); ok {
		c.all = true
	}
	c.perms = append(c.perms, p)
	c.version.Add(1)
}

// AddAll inserts every permission of other into the collection.
func (c *Permissions) AddAll(other *Permissions) {
	if other == nil {
		return
	}
	for _, p := range other.Elements() {
		c.Add(p)
	}
}

// seal returns a current immutable index for the collection, building
// and publishing one if the cached snapshot is missing or stale.
func (c *Permissions) seal() *permIndex {
	if c == nil {
		return emptyIndex
	}
	ver := c.version.Load()
	if idx := c.sealed.Load(); idx != nil && idx.version == ver {
		return idx
	}
	c.mu.RLock()
	// Re-read under the lock: writers hold the write lock while
	// bumping, so the version is stable for the duration of the build.
	idx := &permIndex{
		version: c.version.Load(),
		all:     c.all,
		exact:   make(map[string]Permission, len(c.perms)),
		byType:  make(map[string][]Permission),
	}
	for _, p := range c.perms {
		idx.exact[Key(p)] = p
		t := p.Type()
		idx.byType[t] = append(idx.byType[t], p)
	}
	c.mu.RUnlock()
	// A concurrent resealer may overwrite a newer snapshot with this
	// one; harmless, since validity is re-checked against version.
	c.sealed.Store(idx)
	return idx
}

// Implies reports whether any contained permission implies p.
func (c *Permissions) Implies(p Permission) bool {
	if c == nil {
		return false
	}
	return c.impliesKeyed(Key(p), p)
}

// impliesKeyed is Implies with the canonical Key precomputed by the
// caller (the access controller computes it once per stack walk).
// Repeated queries are answered from the snapshot's decision memo: an
// atomic load plus a map hit.
func (c *Permissions) impliesKeyed(key string, p Permission) bool {
	if c == nil {
		return false
	}
	idx := c.seal()
	if idx.all {
		return true
	}
	if v, ok := idx.decisions[key]; ok {
		return v
	}
	v := idx.implies(p)
	c.memoize(idx, key, v)
	return v
}

// memoize publishes a copy of the snapshot with one more cached
// decision. A lost CAS race drops the memo, never correctness.
func (c *Permissions) memoize(idx *permIndex, key string, v bool) {
	if len(idx.decisions) >= maxIndexDecisions {
		return
	}
	decisions := make(map[string]bool, len(idx.decisions)+1)
	for k, dv := range idx.decisions {
		decisions[k] = dv
	}
	decisions[key] = v
	next := &permIndex{
		version:   idx.version,
		all:       idx.all,
		exact:     idx.exact,
		byType:    idx.byType,
		decisions: decisions,
	}
	c.sealed.CompareAndSwap(idx, next)
}

// implies answers a query against the snapshot.
func (idx *permIndex) implies(p Permission) bool {
	if idx.all {
		return true
	}
	if p == nil {
		// Matches the linear scan: no typed permission implies nil.
		return false
	}
	if held, ok := idx.exact[Key(p)]; ok && held.Implies(p) {
		return true
	}
	for _, held := range idx.byType[p.Type()] {
		if held.Implies(p) {
			return true
		}
	}
	return false
}

// Elements returns a snapshot of the contained permissions.
func (c *Permissions) Elements() []Permission {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Permission, len(c.perms))
	copy(out, c.perms)
	return out
}

// Len returns the number of contained permissions.
func (c *Permissions) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.perms)
}

// Union returns a new collection holding the permissions of both c and
// other. Either argument may be nil.
func Union(c, other *Permissions) *Permissions {
	out := NewPermissions()
	out.AddAll(c)
	out.AddAll(other)
	return out
}

// String lists the collection in policy-file syntax, one permission per
// line.
func (c *Permissions) String() string {
	var b strings.Builder
	for _, p := range c.Elements() {
		b.WriteString("  ")
		b.WriteString(String(p))
		b.WriteString(";\n")
	}
	return b.String()
}
