package security

import (
	"strings"
	"testing"

	"mpj/internal/audit"
	"mpj/internal/vm"
)

// auditVM boots a bare VM with a MemStore-backed audit log attached.
func auditVM(t *testing.T, mask audit.Category) (*vm.VM, *audit.Log) {
	t.Helper()
	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	t.Cleanup(func() { v.Exit(0) })
	l := audit.New(audit.Config{Store: audit.NewMemStore(), Mask: mask})
	v.SetAuditLog(l)
	return v, l
}

func runOn(t *testing.T, v *vm.VM, fn func(th *vm.Thread)) {
	t.Helper()
	th, err := v.SpawnThread(vm.ThreadSpec{Group: v.MainGroup(), Name: "t", Run: fn})
	if err != nil {
		t.Fatal(err)
	}
	th.Join()
}

func TestCheckPermissionAuditsDenial(t *testing.T) {
	v, l := auditVM(t, audit.CatDeny)
	runOn(t, v, func(th *vm.Thread) {
		BindUserPermissions(th, "mallory", NewPermissions())
		th.PushFrame(vm.Frame{Class: "App", Domain: domainWith("app", NewFilePermission("/data/-", "read"))})
		defer th.PopFrame()
		if err := CheckPermission(th, NewFilePermission("/etc/passwd", "write")); err == nil {
			t.Error("ungranted write allowed")
		}
		// An allowed check must NOT land in the log: CatAccess is off.
		if err := CheckPermission(th, NewFilePermission("/data/x", "read")); err != nil {
			t.Errorf("granted read denied: %v", err)
		}
	})
	l.Sync()
	recs, err := l.Query(audit.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want exactly the denial: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Cat != audit.CatDeny || r.Verb != "deny" || r.User != "mallory" {
		t.Fatalf("wrong denial record: %+v", r)
	}
	if !strings.Contains(r.Detail, `"/etc/passwd"`) || !strings.Contains(r.Detail, "domain=app") {
		t.Fatalf("denial detail lacks permission/domain: %q", r.Detail)
	}
}

func TestCheckPermissionAuditsAllowWhenEnabled(t *testing.T) {
	v, l := auditVM(t, audit.CatAccess)
	runOn(t, v, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "App", Domain: domainWith("app", NewFilePermission("/data/-", "read"))})
		defer th.PopFrame()
		if err := CheckPermission(th, NewFilePermission("/data/x", "read")); err != nil {
			t.Errorf("granted read denied: %v", err)
		}
	})
	l.Sync()
	recs, err := l.Query(audit.Query{Cats: audit.CatAccess, Verb: "allow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d allow records, want 1", len(recs))
	}
	if !strings.Contains(recs[0].Detail, `"/data/x"`) {
		t.Fatalf("allow detail %q", recs[0].Detail)
	}
}

func TestCheckPermissionNoAuditLogStillWorks(t *testing.T) {
	// The pre-audit configuration: no log attached anywhere.
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "App", Domain: domainWith("app", NewFilePermission("/data/-", "read"))})
		defer th.PopFrame()
		if err := CheckPermission(th, NewFilePermission("/data/x", "read")); err != nil {
			t.Errorf("granted read denied: %v", err)
		}
		if err := CheckPermission(th, NewFilePermission("/data/x", "write")); err == nil {
			t.Error("ungranted write allowed")
		}
	})
}
