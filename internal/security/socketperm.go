package security

import (
	"strconv"
	"strings"
)

// Socket permission actions.
const (
	ActionConnect = "connect"
	ActionAccept  = "accept"
	ActionListen  = "listen"
	ActionResolve = "resolve"
)

// SocketPermission guards network access in java.net.SocketPermission
// style. Targets are "host", "host:port", "host:low-high", "*.domain"
// or "*"; actions are a comma-separated subset of connect, accept,
// listen, resolve. Any of connect/accept/listen implies resolve.
type SocketPermission struct {
	Host     string
	PortLow  int
	PortHigh int
	actions  []string
}

var _ Permission = SocketPermission{}

const maxPort = 65535

// NewSocketPermission parses a target of the form "host[:portspec]" and
// an action list. An absent port spec matches all ports.
func NewSocketPermission(target, actions string) SocketPermission {
	host := target
	lo, hi := 0, maxPort
	if i := strings.LastIndex(target, ":"); i >= 0 {
		host = target[:i]
		lo, hi = parsePortRange(target[i+1:])
	}
	acts := canonActions(actions)
	// connect/accept/listen each imply resolve.
	for _, a := range acts {
		if a == ActionConnect || a == ActionAccept || a == ActionListen {
			if !actionsSuperset(acts, []string{ActionResolve}) {
				acts = canonActions(joinActions(acts) + "," + ActionResolve)
			}
			break
		}
	}
	return SocketPermission{Host: strings.ToLower(host), PortLow: lo, PortHigh: hi, actions: acts}
}

// parsePortRange parses "80", "80-90", "1024-", "-1023" or "".
func parsePortRange(s string) (lo, hi int) {
	if s == "" || s == "*" {
		return 0, maxPort
	}
	if i := strings.Index(s, "-"); i >= 0 {
		lo, hi = 0, maxPort
		if left := s[:i]; left != "" {
			lo = atoiPort(left, 0)
		}
		if right := s[i+1:]; right != "" {
			hi = atoiPort(right, maxPort)
		}
		return lo, hi
	}
	p := atoiPort(s, -1)
	if p < 0 {
		return 0, maxPort
	}
	return p, p
}

func atoiPort(s string, fallback int) int {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n > maxPort {
		return fallback
	}
	return n
}

// Type implements Permission.
func (SocketPermission) Type() string { return "socket" }

// Target implements Permission.
func (p SocketPermission) Target() string {
	if p.PortLow == 0 && p.PortHigh == maxPort {
		return p.Host
	}
	if p.PortLow == p.PortHigh {
		return p.Host + ":" + strconv.Itoa(p.PortLow)
	}
	return p.Host + ":" + strconv.Itoa(p.PortLow) + "-" + strconv.Itoa(p.PortHigh)
}

// Actions implements Permission.
func (p SocketPermission) Actions() string { return joinActions(p.actions) }

// Implies implements Permission.
func (p SocketPermission) Implies(other Permission) bool {
	o, ok := other.(SocketPermission)
	if !ok {
		return false
	}
	if !actionsSuperset(p.actions, o.actions) {
		return false
	}
	if o.PortLow < p.PortLow || o.PortHigh > p.PortHigh {
		return false
	}
	return hostImplies(p.Host, o.Host)
}

// hostImplies implements host wildcard matching: "*" matches any host,
// "*.domain" matches any host ending in ".domain" (and "domain"
// itself is NOT matched, as in Java).
func hostImplies(pattern, host string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasPrefix(pattern, "*.") {
		if strings.HasPrefix(host, "*.") {
			// Wildcard-to-wildcard: "*.a.com" implies "*.b.a.com".
			return host == pattern || strings.HasSuffix(host[1:], pattern[1:])
		}
		return strings.HasSuffix(host, pattern[1:])
	}
	return pattern == host
}
