package security

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mpj/internal/vm"
)

// TestAddGrantInvalidatesCachedDecisions is the dedicated invalidation
// test for the access-control fast path: a policy-backed domain caches
// a denial, then AddGrant (the Appletviewer's runtime delegation path)
// confers the permission, and the very next check must observe the
// grant — the generation bump must flush the cached decision.
func TestAddGrantInvalidatesCachedDecisions(t *testing.T) {
	pol := MustParsePolicy(`
grant codeBase "file:/apps/-" {
    permission runtime "harmless";
};
`)
	d := pol.DomainFor("tool", NewCodeSource("file:/apps/tool"))
	perm := NewFilePermission("/data/x", "read")

	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "Tool", Domain: d})
		defer th.PopFrame()

		// Prime the caches: repeated denials.
		for i := 0; i < 3; i++ {
			if err := CheckPermission(th, perm); err == nil {
				t.Fatal("ungranted permission allowed before delegation")
			}
		}
		// Runtime delegation.
		pol.AddGrant(&Grant{
			CodeBase: "file:/apps/-",
			Perms:    []Permission{NewFilePermission("/data/-", "read")},
		})
		if err := CheckPermission(th, perm); err != nil {
			t.Fatalf("cached denial survived AddGrant: %v", err)
		}
		// A cached positive must stay positive across further grants.
		pol.AddGrant(&Grant{
			CodeBase: "file:/apps/-",
			Perms:    []Permission{NewRuntimePermission("other")},
		})
		if err := CheckPermission(th, perm); err != nil {
			t.Fatalf("unrelated AddGrant broke a cached grant: %v", err)
		}
	})
}

// TestAddGrantEnablesUserExercise: a later grant of UserPermission to
// the code source must switch the (cached) domain onto the user path.
func TestAddGrantEnablesUserExercise(t *testing.T) {
	pol := MustParsePolicy(`
grant user "alice" {
    permission file "/home/alice/-", "read,write";
};
`)
	d := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	perm := NewFilePermission("/home/alice/notes", "read")

	runOnThread(t, func(th *vm.Thread) {
		BindUserPermissions(th, "alice", pol.PermissionsForUser("alice"))
		th.PushFrame(vm.Frame{Class: "Editor", Domain: d})
		defer th.PopFrame()

		if err := CheckPermission(th, perm); err == nil {
			t.Fatal("domain without UserPermission exercised user grants")
		}
		pol.AddGrant(&Grant{CodeBase: "file:/local/-", Perms: []Permission{UserPermission{}}})
		if err := CheckPermission(th, perm); err != nil {
			t.Fatalf("UserPermission delegation not observed: %v", err)
		}
	})
}

// TestDetachedDomainObservesStaticAdd: a domain built directly from a
// collection (no backing policy) must still observe later Adds to that
// collection — the collection's version counter invalidates the
// decision memo.
func TestDetachedDomainObservesStaticAdd(t *testing.T) {
	d := domainWith("app", NewRuntimePermission("x"))
	perm := NewFilePermission("/data/x", "read")
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "App", Domain: d})
		defer th.PopFrame()
		if CheckGranted(th, perm) {
			t.Fatal("ungranted permission allowed")
		}
		d.Static.Add(NewFilePermission("/data/-", "read"))
		if !CheckGranted(th, perm) {
			t.Fatal("cached denial survived Static.Add")
		}
	})
}

// TestWalkDedupOverflowStaysCorrect: more distinct domains than the
// walk's fixed dedup window must still all be consulted.
func TestWalkDedupOverflowStaysCorrect(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		// maxWalkDedup+2 strong domains, then one weak domain pushed
		// first (outermost), so it is consulted last.
		weak := domainWith("weak")
		th.PushFrame(vm.Frame{Class: "Weak", Domain: weak})
		for i := 0; i < maxWalkDedup+2; i++ {
			d := domainWith(fmt.Sprintf("strong%d", i), NewFilePermission("/data/-", "read"))
			th.PushFrame(vm.Frame{Class: "Strong", Domain: d})
		}
		defer func() {
			for i := 0; i < maxWalkDedup+3; i++ {
				th.PopFrame()
			}
		}()
		if CheckGranted(th, NewFilePermission("/data/x", "read")) {
			t.Fatal("weak outermost domain beyond the dedup window was skipped")
		}
	})
}

// TestCheckPermissionRepeatedDomainDedup: the same domain repeated at
// depth must behave exactly like a single occurrence, for grants and
// denials, with and without the user path.
func TestCheckPermissionRepeatedDomainDedup(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	editor := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	runOnThread(t, func(th *vm.Thread) {
		BindUserPermissions(th, "alice", pol.PermissionsForUser("alice"))
		for i := 0; i < 40; i++ {
			th.PushFrame(vm.Frame{Class: "Editor", Domain: editor})
		}
		defer func() {
			for i := 0; i < 40; i++ {
				th.PopFrame()
			}
		}()
		if !CheckGranted(th, NewFilePermission("/home/alice/a", "write")) {
			t.Fatal("deep repeated-domain stack denied the user grant")
		}
		if CheckGranted(th, NewFilePermission("/home/bob/b", "read")) {
			t.Fatal("deep repeated-domain stack allowed a foreign file")
		}
	})
}

// TestConcurrentCheckPermissionWithAddGrantRaces is the -race
// concurrency test: many threads hammer CheckPermission on shared
// policy-backed domains while the main goroutine races AddGrant calls.
// After each generation bump is published (synchronized via channel),
// no thread may observe a stale decision: permissions granted before
// the sync point must be allowed, never-granted ones must stay denied.
func TestConcurrentCheckPermissionWithAddGrantRaces(t *testing.T) {
	pol := NewPolicy()
	pol.AddGrant(&Grant{
		CodeBase: "file:/apps/-",
		Perms:    []Permission{NewRuntimePermission("base")},
	})
	d := pol.DomainFor("app", NewCodeSource("file:/apps/app"))

	const workers = 8
	const grantRounds = 64

	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)

	granted := make(chan int)    // announces rounds granted so far
	var wg sync.WaitGroup

	worker := func(th *vm.Thread) {
		defer wg.Done()
		th.PushFrame(vm.Frame{Class: "App", Domain: d})
		baseline := NewRuntimePermission("base")
		never := NewFilePermission("/etc/shadow", "read")
		rounds := 0
		for {
			// Permissions from the policy's initial state must always
			// be granted; never-granted ones always denied — during
			// and after every AddGrant race.
			if !CheckGranted(th, baseline) {
				t.Error("pre-existing grant denied during AddGrant race")
				return
			}
			if CheckGranted(th, never) {
				t.Error("never-granted permission allowed during AddGrant race")
				return
			}
			select {
			case r, ok := <-granted:
				if !ok {
					return
				}
				rounds = r
				// The send happens after AddGrant returned, so the new
				// grant's generation bump is visible: a stale cached
				// denial here is a bug.
				perm := NewRuntimePermission(fmt.Sprintf("round%d", rounds-1))
				if !CheckGranted(th, perm) {
					t.Errorf("stale denial: grant of round %d not visible after sync", rounds-1)
					return
				}
			default:
			}
		}
	}

	for i := 0; i < workers; i++ {
		wg.Add(1)
		if _, err := v.SpawnThread(vm.ThreadSpec{
			Group: v.MainGroup(),
			Name:  fmt.Sprintf("w%d", i),
			Run:   worker,
		}); err != nil {
			t.Fatal(err)
		}
	}

	for r := 0; r < grantRounds; r++ {
		pol.AddGrant(&Grant{
			CodeBase: "file:/apps/-",
			Perms:    []Permission{NewRuntimePermission(fmt.Sprintf("round%d", r))},
		})
		granted <- r + 1 // happens-after the AddGrant above
	}
	close(granted)
	wg.Wait()
}

// TestQuickSealedIndexMatchesLinearScan: the sealed typed index and
// decision memo must agree with a plain linear scan over the element
// slice for random collections and probes, including repeated probes
// (which exercise the memo) and mutation between probes.
func TestQuickSealedIndexMatchesLinearScan(t *testing.T) {
	reference := func(perms []Permission, q Permission) bool {
		for _, held := range perms {
			if held.Implies(q) {
				return true
			}
		}
		return false
	}
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := NewPermissions()
		for i := 0; i < r.Intn(6); i++ {
			switch r.Intn(4) {
			case 0:
				c.Add(NewFilePermission(genPath(r, true), genActions(r)))
			case 1:
				c.Add(NewSocketPermission("host:"+itoa(r.Intn(100)), "connect"))
			case 2:
				c.Add(NewRuntimePermission(string(rune('a' + r.Intn(3)))))
			case 3:
				c.Add(NewObjectPermission("obj."+string(rune('a'+r.Intn(3))), "lookup"))
			}
		}
		for probe := 0; probe < 12; probe++ {
			var q Permission
			switch r.Intn(3) {
			case 0:
				q = NewFilePermission(genPath(r, false), genActions(r))
			case 1:
				q = NewSocketPermission("host:"+itoa(r.Intn(100)), "connect")
			default:
				q = NewRuntimePermission(string(rune('a' + r.Intn(3))))
			}
			want := reference(c.Elements(), q)
			// Ask twice: the second hit comes from the decision memo.
			if got := c.Implies(q); got != want {
				t.Fatalf("seed %d: sealed Implies(%s) = %v, linear scan = %v", seed, String(q), got, want)
			}
			if got := c.Implies(q); got != want {
				t.Fatalf("seed %d: memoized Implies(%s) = %v, linear scan = %v", seed, String(q), got, want)
			}
			if probe == 6 {
				// Mutate mid-stream: the memo must be discarded.
				c.Add(NewFilePermission(genPath(r, true), genActions(r)))
			}
		}
	}
}

// TestSealedSnapshotConcurrentAddAndImplies shakes the sealed snapshot
// under -race: concurrent Implies, Add and Elements on one collection.
func TestSealedSnapshotConcurrentAddAndImplies(t *testing.T) {
	c := NewPermissions(NewFilePermission("/data/-", "read"))
	probe := NewFilePermission("/data/x", "read")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !c.Implies(probe) {
					t.Error("established grant vanished")
					return
				}
				_ = c.Elements()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		c.Add(NewRuntimePermission(fmt.Sprintf("r%d", i)))
	}
	close(stop)
	wg.Wait()
	if c.Len() != 201 {
		t.Fatalf("len = %d, want 201", c.Len())
	}
}

// TestPolicyMatchCacheStaysCoherent: PermissionsForCode must reflect
// every AddGrant immediately, and the returned collections must be
// independently mutable (the cache shares no owned state).
func TestPolicyMatchCacheStaysCoherent(t *testing.T) {
	pol := NewPolicy()
	cs := NewCodeSource("file:/apps/app")
	pol.AddGrant(&Grant{CodeBase: "file:/apps/-", Perms: []Permission{NewRuntimePermission("a")}})

	p1 := pol.PermissionsForCode(cs)
	p2 := pol.PermissionsForCode(cs) // cache hit
	if !p1.Implies(NewRuntimePermission("a")) || !p2.Implies(NewRuntimePermission("a")) {
		t.Fatal("matched grant missing")
	}
	// Mutating a returned collection must not leak into later calls.
	p2.Add(NewRuntimePermission("leak"))
	if pol.PermissionsForCode(cs).Implies(NewRuntimePermission("leak")) {
		t.Fatal("caller mutation leaked into the policy match cache")
	}
	pol.AddGrant(&Grant{CodeBase: "file:/apps/-", Perms: []Permission{NewRuntimePermission("b")}})
	if !pol.PermissionsForCode(cs).Implies(NewRuntimePermission("b")) {
		t.Fatal("match cache served a stale generation")
	}
	if got := pol.PermissionsForCode(cs).Len(); got != 2 {
		t.Fatalf("perm count = %d, want 2", got)
	}
}

// TestDomainImpliesExported: the exported ProtectionDomain.Implies
// answers the static (code-source) decision with caching.
func TestDomainImpliesExported(t *testing.T) {
	d := domainWith("app", NewFilePermission("/data/-", "read"))
	if !d.Implies(NewFilePermission("/data/x", "read")) {
		t.Fatal("static grant not implied")
	}
	if d.Implies(NewFilePermission("/etc/passwd", "read")) {
		t.Fatal("ungranted permission implied")
	}
}

// TestPermissionKeyCanonical: Key distinguishes type, target and
// actions, canonicalizes action order, and maps nil to "".
func TestPermissionKeyCanonical(t *testing.T) {
	if Key(nil) != "" {
		t.Fatal("Key(nil) != \"\"")
	}
	a := Key(NewFilePermission("/a", "write,read"))
	b := Key(NewFilePermission("/a", "read,write"))
	if a != b {
		t.Fatalf("action order not canonical: %q vs %q", a, b)
	}
	if Key(NewFilePermission("/a", "read")) == Key(NewFilePermission("/a", "write")) {
		t.Fatal("actions not part of the key")
	}
	if Key(NewRuntimePermission("x")) == Key(NewReflectPermission("x")) {
		t.Fatal("type not part of the key")
	}
}
