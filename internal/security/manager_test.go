package security

import (
	"testing"

	"mpj/internal/vm"
)

// threadIn spawns a parked thread in group g carrying an unprivileged
// application domain frame, as every application thread does in the
// real platform.
func threadIn(t *testing.T, v *vm.VM, g *vm.ThreadGroup, name string) *vm.Thread {
	t.Helper()
	th, err := v.SpawnThread(vm.ThreadSpec{
		Group: g, Name: name, Daemon: true,
		InheritFrames: []vm.Frame{{Class: name, Domain: domainWith(name)}},
		Run:           func(th *vm.Thread) { <-th.StopChan() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return th
}

// TestFigure3ThreadContainment verifies the Section 5.6 inter-application
// protection rules on the thread-group hierarchy of Figure 3: threads of
// one application may not touch threads of a sibling application, while
// an ancestor (the shell that launched them) may.
func TestFigure3ThreadContainment(t *testing.T) {
	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)
	m := NewSystemManager()

	shellGroup, err := v.NewGroup(v.MainGroup(), "shell")
	if err != nil {
		t.Fatal(err)
	}
	app1, err := v.NewGroup(shellGroup, "app-1")
	if err != nil {
		t.Fatal(err)
	}
	app2, err := v.NewGroup(shellGroup, "app-2")
	if err != nil {
		t.Fatal(err)
	}

	shellThread := threadIn(t, v, shellGroup, "shell-main")
	app1Thread := threadIn(t, v, app1, "app1-main")
	app2Thread := threadIn(t, v, app2, "app2-main")
	defer func() {
		shellThread.Stop()
		app1Thread.Stop()
		app2Thread.Stop()
	}()

	// The shell's group is an ancestor of both applications' groups.
	if err := m.CheckThreadAccess(shellThread, app1Thread); err != nil {
		t.Errorf("shell must access its child app threads: %v", err)
	}
	if err := m.CheckGroupAccess(shellThread, app2); err != nil {
		t.Errorf("shell must access its child app groups: %v", err)
	}
	// Siblings may not touch each other.
	if err := m.CheckThreadAccess(app1Thread, app2Thread); err == nil {
		t.Error("sibling applications must not access each other's threads")
	}
	if err := m.CheckGroupAccess(app1Thread, app2); err == nil {
		t.Error("sibling applications must not access each other's groups")
	}
	// A child may not reach up to its parent's threads.
	if err := m.CheckThreadAccess(app1Thread, shellThread); err == nil {
		t.Error("child app must not access the shell's thread")
	}
	// A thread may access itself and its own group.
	if err := m.CheckThreadAccess(app1Thread, app1Thread); err != nil {
		t.Errorf("self access denied: %v", err)
	}
	if err := m.CheckGroupAccess(app1Thread, app1); err != nil {
		t.Errorf("own group access denied: %v", err)
	}
}

func TestModifyThreadPermissionOverridesAncestry(t *testing.T) {
	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)
	m := NewSystemManager()

	app1, _ := v.NewGroup(v.MainGroup(), "app-1")
	app2, _ := v.NewGroup(v.MainGroup(), "app-2")
	victim := threadIn(t, v, app2, "victim")
	defer victim.Stop()

	privileged := domainWith("taskmgr", NewRuntimePermission("modifyThread"), NewRuntimePermission("modifyThreadGroup"))
	result := make(chan error, 2)
	th, err := v.SpawnThread(vm.ThreadSpec{
		Group: app1, Name: "taskmgr",
		InheritFrames: []vm.Frame{{Class: "TaskMgr", Domain: privileged}},
		Run: func(th *vm.Thread) {
			result <- m.CheckThreadAccess(th, victim)
			result <- m.CheckGroupAccess(th, app2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	th.Join()
	if err := <-result; err != nil {
		t.Errorf("modifyThread holder denied: %v", err)
	}
	if err := <-result; err != nil {
		t.Errorf("modifyThreadGroup holder denied: %v", err)
	}
}

func TestMemberAccessRule(t *testing.T) {
	m := NewSystemManager()
	runOnThread(t, func(th *vm.Thread) {
		unprivileged := domainWith("app")
		th.PushFrame(vm.Frame{Class: "App", Domain: unprivileged})
		defer th.PopFrame()
		if err := m.CheckMemberAccess(th, true); err != nil {
			t.Errorf("public member access must be free: %v", err)
		}
		if err := m.CheckMemberAccess(th, false); err == nil {
			t.Error("non-public member access must require ReflectPermission")
		}
	})
	runOnThread(t, func(th *vm.Thread) {
		reflector := domainWith("debugger", NewReflectPermission("accessDeclaredMembers"))
		th.PushFrame(vm.Frame{Class: "Debugger", Domain: reflector})
		defer th.PopFrame()
		if err := m.CheckMemberAccess(th, false); err != nil {
			t.Errorf("ReflectPermission holder denied: %v", err)
		}
	})
}

func TestManagerConvenienceChecks(t *testing.T) {
	m := NewSystemManager()
	runOnThread(t, func(th *vm.Thread) {
		d := domainWith("app",
			NewFilePermission("/data/-", "read,write,delete,execute"),
			NewSocketPermission("svc.local:80", "connect,accept,listen"),
			NewPropertyPermission("app.*", "read,write"),
			NewRuntimePermission("exitVM"),
			NewRuntimePermission("setUser"),
			NewRuntimePermission("createClassLoader"),
			NewRuntimePermission("setIO"),
		)
		th.PushFrame(vm.Frame{Class: "App", Domain: d})
		defer th.PopFrame()

		allowed := []error{
			m.CheckRead(th, "/data/a"),
			m.CheckWrite(th, "/data/a"),
			m.CheckDelete(th, "/data/a"),
			m.CheckExec(th, "/data/tool"),
			m.CheckConnect(th, "svc.local", 80),
			m.CheckListen(th, "svc.local", 80),
			m.CheckAccept(th, "svc.local", 80),
			m.CheckPropertyRead(th, "app.mode"),
			m.CheckPropertyWrite(th, "app.mode"),
			m.CheckExitVM(th),
			m.CheckSetUser(th),
			m.CheckCreateLoader(th),
			m.CheckSetIO(th),
		}
		for i, err := range allowed {
			if err != nil {
				t.Errorf("allowed check %d denied: %v", i, err)
			}
		}
		denied := []error{
			m.CheckRead(th, "/etc/passwd"),
			m.CheckConnect(th, "other.host", 80),
			m.CheckPropertyWrite(th, "os.name"),
		}
		for i, err := range denied {
			if err == nil {
				t.Errorf("denied check %d allowed", i)
			}
		}
		if err := m.CheckPermission(th, NewRuntimePermission("exitVM")); err != nil {
			t.Errorf("CheckPermission delegate: %v", err)
		}
	})
}
