package security

import (
	"fmt"

	"mpj/internal/audit"
	"mpj/internal/vm"
)

// userContext is the per-thread security context: the running user's
// name and permission set. It is published through the thread's
// lock-free security-context slot, so the stack-inspection hot path
// resolves it with a single atomic load instead of a mutex-guarded
// thread-local lookup.
type userContext struct {
	name  string
	perms *Permissions
}

// AccessControlError is returned when a permission check fails. It
// identifies the denied permission and the protection domain on the
// call stack that lacked it.
type AccessControlError struct {
	// Perm is the permission that was denied.
	Perm Permission
	// Domain names the protection domain that failed the check ("" if
	// the check was denied for another reason).
	Domain string
	// User is the running user at the time of the check, if bound.
	User string
}

// Error implements error.
func (e *AccessControlError) Error() string {
	msg := fmt.Sprintf("access denied: %s", String(e.Perm))
	if e.Domain != "" {
		msg += fmt.Sprintf(" (domain %s)", e.Domain)
	}
	if e.User != "" {
		msg += fmt.Sprintf(" (user %s)", e.User)
	}
	return msg
}

// BindUserPermissions associates the running user's name and permission
// set with a thread. The core package calls this when it creates
// application threads and when an application's user changes.
func BindUserPermissions(t *vm.Thread, userName string, perms *Permissions) {
	t.SetSecurityContext(&userContext{name: userName, perms: perms})
}

// userContextOf returns the thread's bound user context, or nil.
func userContextOf(t *vm.Thread) *userContext {
	uc, _ := t.SecurityContext().(*userContext)
	return uc
}

// UserPermissionsOf returns the user permission set bound to the
// thread, or nil.
func UserPermissionsOf(t *vm.Thread) *Permissions {
	if uc := userContextOf(t); uc != nil {
		return uc.perms
	}
	return nil
}

// UserNameOf returns the user name bound to the thread, or "".
func UserNameOf(t *vm.Thread) string {
	if uc := userContextOf(t); uc != nil {
		return uc.name
	}
	return ""
}

// maxWalkDedup bounds the fixed-size (stack-allocated) set of distinct
// domains remembered during one stack walk. Deeper domain diversity is
// legal; excess domains are simply re-checked, which is only a cache
// miss, never a correctness issue.
const maxWalkDedup = 8

// CheckPermission performs JDK-1.2-style stack inspection: every
// protection domain on the calling thread's frame stack — from the
// innermost frame outward, stopping after a frame marked privileged —
// must imply the permission. A domain implies the permission either
// through its static (code-source) grants, or, if it holds
// UserPermission, through the permissions granted to the application's
// running user. Frames with a nil domain belong to bootstrap system
// code and are fully trusted.
//
// Fast path: the permission's canonical Key is computed once; each
// distinct domain is consulted once per walk (deep call chains repeat
// the same few domains heavily) and answers repeated checks from its
// lock-free decision cache.
//
// An empty stack means VM-internal code is executing; it is trusted.
//
// Both outcomes are audited when the corresponding category is enabled:
// denials as CatDeny (with the denied permission, user and failing
// domain), allowed decisions as CatAccess. CatAccess is disabled by
// default, so the fast path pays only one extra atomic load per check.
func CheckPermission(t *vm.Thread, perm Permission) error {
	err := checkPermissionWalk(t, perm)
	if l := t.VM().AuditLog(); l != nil {
		auditDecision(l, t, perm, err)
	}
	return err
}

// auditDecision emits the outcome of a permission check. Out of line so
// that CheckPermission stays small; the common no-log / all-disabled
// cases return before formatting anything.
func auditDecision(l *audit.Log, t *vm.Thread, perm Permission, err error) {
	if err == nil {
		if !l.Enabled(audit.CatAccess) {
			return
		}
		l.Emit(audit.Event{Cat: audit.CatAccess, Verb: "allow",
			User: UserNameOf(t), App: t.AppTag(), Thread: int64(t.ID()),
			Detail: String(perm)})
		return
	}
	if !l.Enabled(audit.CatDeny) {
		return
	}
	detail := String(perm)
	if ace, ok := err.(*AccessControlError); ok && ace.Domain != "" {
		detail += " domain=" + ace.Domain
	}
	l.Emit(audit.Event{Cat: audit.CatDeny, Verb: "deny",
		User: UserNameOf(t), App: t.AppTag(), Thread: int64(t.ID()),
		Detail: detail})
}

// checkPermissionWalk is the stack-inspection core of CheckPermission.
func checkPermissionWalk(t *vm.Thread, perm Permission) error {
	frames := t.Frames()
	if len(frames) == 0 {
		return nil
	}
	key := Key(perm)
	var uc *userContext
	userLoaded := false
	var passed [maxWalkDedup]*ProtectionDomain
	nPassed := 0
walk:
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		if f.Domain != nil {
			d, ok := f.Domain.(*ProtectionDomain)
			if !ok {
				return &AccessControlError{Perm: perm, Domain: f.Domain.DomainName()}
			}
			for j := 0; j < nPassed; j++ {
				if passed[j] == d {
					// Already checked (and passed) earlier in this walk.
					if f.Privileged {
						return nil
					}
					continue walk
				}
			}
			st := d.currentState()
			allowed, cached := st.decisions[key]
			if !cached {
				allowed = st.perms.impliesKeyed(key, perm)
				d.memoize(st, key, allowed)
			}
			if !allowed && st.exercisesUser {
				if !userLoaded {
					uc = userContextOf(t)
					userLoaded = true
				}
				if uc != nil {
					allowed = uc.perms.impliesKeyed(key, perm)
				}
			}
			if !allowed {
				return &AccessControlError{Perm: perm, Domain: d.Name, User: UserNameOf(t)}
			}
			if nPassed < maxWalkDedup {
				passed[nPassed] = d
				nPassed++
			}
		}
		if f.Privileged {
			return nil
		}
	}
	return nil
}

// DoPrivileged runs fn with the calling thread's innermost frame marked
// as a privilege boundary: permission checks performed inside fn stop
// their stack walk at that frame, so less-trusted callers further out
// do not attenuate the privileges of the current (trusted) code. This
// is how, e.g., the Font class reads font files on behalf of an
// application that itself has no file permissions.
func DoPrivileged(t *vm.Thread, fn func() error) error {
	restore := t.MarkTopFramePrivileged()
	defer restore()
	return fn()
}

// CheckGranted is a convenience wrapper returning a bool instead of an
// error.
func CheckGranted(t *vm.Thread, perm Permission) bool {
	return CheckPermission(t, perm) == nil
}
