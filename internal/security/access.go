package security

import (
	"fmt"

	"mpj/internal/vm"
)

// userPermsKey is the thread-local slot where the platform binds the
// permission set of the application's running user. The
// AccessController consults it when a domain on the stack holds
// UserPermission (Section 5.3).
const userPermsKey = "security.userPermissions"

// userNameKey is the thread-local slot holding the running user's name
// (diagnostics only).
const userNameKey = "security.userName"

// AccessControlError is returned when a permission check fails. It
// identifies the denied permission and the protection domain on the
// call stack that lacked it.
type AccessControlError struct {
	// Perm is the permission that was denied.
	Perm Permission
	// Domain names the protection domain that failed the check ("" if
	// the check was denied for another reason).
	Domain string
	// User is the running user at the time of the check, if bound.
	User string
}

// Error implements error.
func (e *AccessControlError) Error() string {
	msg := fmt.Sprintf("access denied: %s", String(e.Perm))
	if e.Domain != "" {
		msg += fmt.Sprintf(" (domain %s)", e.Domain)
	}
	if e.User != "" {
		msg += fmt.Sprintf(" (user %s)", e.User)
	}
	return msg
}

// BindUserPermissions associates the running user's name and permission
// set with a thread. The core package calls this when it creates
// application threads and when an application's user changes.
func BindUserPermissions(t *vm.Thread, userName string, perms *Permissions) {
	t.SetLocal(userNameKey, userName)
	t.SetLocal(userPermsKey, perms)
}

// UserPermissionsOf returns the user permission set bound to the
// thread, or nil.
func UserPermissionsOf(t *vm.Thread) *Permissions {
	v, ok := t.Local(userPermsKey)
	if !ok {
		return nil
	}
	perms, _ := v.(*Permissions)
	return perms
}

// UserNameOf returns the user name bound to the thread, or "".
func UserNameOf(t *vm.Thread) string {
	v, ok := t.Local(userNameKey)
	if !ok {
		return ""
	}
	name, _ := v.(string)
	return name
}

// CheckPermission performs JDK-1.2-style stack inspection: every
// protection domain on the calling thread's frame stack — from the
// innermost frame outward, stopping after a frame marked privileged —
// must imply the permission. A domain implies the permission either
// through its static (code-source) grants, or, if it holds
// UserPermission, through the permissions granted to the application's
// running user. Frames with a nil domain belong to bootstrap system
// code and are fully trusted.
//
// An empty stack means VM-internal code is executing; it is trusted.
func CheckPermission(t *vm.Thread, perm Permission) error {
	frames := t.Frames()
	var userPerms *Permissions
	userLoaded := false
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		if f.Domain != nil {
			d, ok := f.Domain.(*ProtectionDomain)
			if !ok {
				return &AccessControlError{Perm: perm, Domain: f.Domain.DomainName()}
			}
			if !d.Static.Implies(perm) {
				allowed := false
				if d.ExercisesUser {
					if !userLoaded {
						userPerms = UserPermissionsOf(t)
						userLoaded = true
					}
					allowed = userPerms.Implies(perm)
				}
				if !allowed {
					return &AccessControlError{Perm: perm, Domain: d.Name, User: UserNameOf(t)}
				}
			}
		}
		if f.Privileged {
			return nil
		}
	}
	return nil
}

// DoPrivileged runs fn with the calling thread's innermost frame marked
// as a privilege boundary: permission checks performed inside fn stop
// their stack walk at that frame, so less-trusted callers further out
// do not attenuate the privileges of the current (trusted) code. This
// is how, e.g., the Font class reads font files on behalf of an
// application that itself has no file permissions.
func DoPrivileged(t *vm.Thread, fn func() error) error {
	restore := t.MarkTopFramePrivileged()
	defer restore()
	return fn()
}

// CheckGranted is a convenience wrapper returning a bool instead of an
// error.
func CheckGranted(t *vm.Thread, perm Permission) bool {
	return CheckPermission(t, perm) == nil
}
