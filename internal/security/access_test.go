package security

import (
	"errors"
	"testing"

	"mpj/internal/vm"
)

// runOnThread executes fn on a fresh VM thread and waits for it.
func runOnThread(t *testing.T, fn func(th *vm.Thread)) {
	t.Helper()
	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)
	th, err := v.SpawnThread(vm.ThreadSpec{Group: v.MainGroup(), Name: "t", Run: fn})
	if err != nil {
		t.Fatal(err)
	}
	th.Join()
}

func domainWith(name string, perms ...Permission) *ProtectionDomain {
	return NewProtectionDomain(name, NewCodeSource("file:/test/"+name), NewPermissions(perms...))
}

func TestCheckPermissionEmptyStackIsTrusted(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		if err := CheckPermission(th, NewFilePermission("/etc/passwd", "write")); err != nil {
			t.Errorf("empty stack should be trusted: %v", err)
		}
	})
}

func TestCheckPermissionSingleDomain(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "App", Domain: domainWith("app", NewFilePermission("/data/-", "read"))})
		defer th.PopFrame()

		if err := CheckPermission(th, NewFilePermission("/data/x", "read")); err != nil {
			t.Errorf("granted read denied: %v", err)
		}
		err := CheckPermission(th, NewFilePermission("/data/x", "write"))
		if err == nil {
			t.Fatal("ungranted write allowed")
		}
		var ace *AccessControlError
		if !errors.As(err, &ace) {
			t.Fatalf("error type %T, want *AccessControlError", err)
		}
		if ace.Domain != "app" {
			t.Fatalf("failing domain = %q, want app", ace.Domain)
		}
	})
}

// TestCheckPermissionIntersectsStack verifies the core stack-inspection
// property: EVERY domain on the stack must hold the permission.
func TestCheckPermissionIntersectsStack(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		trusted := domainWith("system", AllPermission{})
		applet := domainWith("applet", NewSocketPermission("origin:80", "connect"))

		// trusted code calls applet code: applet on top.
		th.PushFrame(vm.Frame{Class: "System", Domain: trusted})
		th.PushFrame(vm.Frame{Class: "Applet", Domain: applet})
		if err := CheckPermission(th, NewFilePermission("/etc/passwd", "read")); err == nil {
			t.Error("applet frame must attenuate trusted caller")
		}
		if err := CheckPermission(th, NewSocketPermission("origin:80", "connect")); err != nil {
			t.Errorf("both domains hold connect: %v", err)
		}
		th.PopFrame()
		th.PopFrame()

		// applet code calls trusted code: trusted on top, still denied
		// (luring attack prevention — privileges are lost when
		// untrusted code is anywhere on the stack).
		th.PushFrame(vm.Frame{Class: "Applet", Domain: applet})
		th.PushFrame(vm.Frame{Class: "System", Domain: trusted})
		if err := CheckPermission(th, NewFilePermission("/etc/passwd", "read")); err == nil {
			t.Error("trusted callee must not amplify untrusted caller without doPrivileged")
		}
		th.PopFrame()
		th.PopFrame()
	})
}

func TestDoPrivilegedStopsWalk(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		trusted := domainWith("font", AllPermission{})
		applet := domainWith("applet")

		// The Font-class scenario of Section 5.6: an application that
		// may not read files asks trusted Font code to render text;
		// Font must read font files via doPrivileged.
		th.PushFrame(vm.Frame{Class: "Applet", Domain: applet})
		th.PushFrame(vm.Frame{Class: "Font", Domain: trusted})

		read := NewFilePermission("/system/fonts/helvetica", "read")
		if err := CheckPermission(th, read); err == nil {
			t.Fatal("without doPrivileged the applet frame must deny")
		}
		err := DoPrivileged(th, func() error {
			return CheckPermission(th, read)
		})
		if err != nil {
			t.Fatalf("doPrivileged read denied: %v", err)
		}
		// After DoPrivileged returns, the privilege must be gone.
		if err := CheckPermission(th, read); err == nil {
			t.Fatal("privilege leaked past DoPrivileged")
		}
		th.PopFrame()
		th.PopFrame()
	})
}

func TestDoPrivilegedDoesNotAmplifyUntrustedTop(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		applet := domainWith("applet")
		th.PushFrame(vm.Frame{Class: "Applet", Domain: applet})
		err := DoPrivileged(th, func() error {
			return CheckPermission(th, NewFilePermission("/etc/passwd", "read"))
		})
		if err == nil {
			t.Fatal("doPrivileged in untrusted code must not grant anything")
		}
		th.PopFrame()
	})
}

// TestUserBasedAccessControl exercises the paper's Section 5.3: a
// domain holding UserPermission may exercise the running user's
// permissions; one without it may not.
func TestUserBasedAccessControl(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	editorDomain := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	appletDomain := pol.DomainFor("applet", NewCodeSource("http://remote/applet"))

	runOnThread(t, func(th *vm.Thread) {
		BindUserPermissions(th, "alice", pol.PermissionsForUser("alice"))

		aliceFile := NewFilePermission("/home/alice/paper.tex", "write")
		bobFile := NewFilePermission("/home/bob/secret", "read")

		// Local editor run by alice: may write alice's files...
		th.PushFrame(vm.Frame{Class: "Editor", Domain: editorDomain})
		if err := CheckPermission(th, aliceFile); err != nil {
			t.Errorf("editor run by alice denied alice's file: %v", err)
		}
		// ...but not bob's.
		if err := CheckPermission(th, bobFile); err == nil {
			t.Error("editor run by alice must not read bob's file")
		}
		th.PopFrame()

		// A remote applet run by alice gets nothing from alice's perms.
		th.PushFrame(vm.Frame{Class: "Applet", Domain: appletDomain})
		if err := CheckPermission(th, aliceFile); err == nil {
			t.Error("applet must not exercise the running user's permissions")
		}
		th.PopFrame()
	})
}

func TestUserSwitchChangesDecisions(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	editorDomain := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "Editor", Domain: editorDomain})
		defer th.PopFrame()
		aliceFile := NewFilePermission("/home/alice/a", "read")

		BindUserPermissions(th, "alice", pol.PermissionsForUser("alice"))
		if err := CheckPermission(th, aliceFile); err != nil {
			t.Fatalf("alice denied her own file: %v", err)
		}
		BindUserPermissions(th, "bob", pol.PermissionsForUser("bob"))
		if err := CheckPermission(th, aliceFile); err == nil {
			t.Fatal("bob allowed alice's file")
		}
		if got := UserNameOf(th); got != "bob" {
			t.Fatalf("user name = %q, want bob", got)
		}
	})
}

func TestNilDomainFramesAreTrusted(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "Bootstrap"})
		defer th.PopFrame()
		if err := CheckPermission(th, NewRuntimePermission("exitVM")); err != nil {
			t.Errorf("nil-domain frame should be trusted: %v", err)
		}
	})
}

func TestUnboundUserPermissionsDeny(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	editorDomain := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	runOnThread(t, func(th *vm.Thread) {
		// No BindUserPermissions call: user perms are nil.
		th.PushFrame(vm.Frame{Class: "Editor", Domain: editorDomain})
		defer th.PopFrame()
		if err := CheckPermission(th, NewFilePermission("/home/alice/a", "read")); err == nil {
			t.Fatal("no user bound: must deny")
		}
		if UserPermissionsOf(th) != nil {
			t.Fatal("expected nil user perms")
		}
		if UserNameOf(th) != "" {
			t.Fatal("expected empty user name")
		}
	})
}

func TestAccessControlErrorMessage(t *testing.T) {
	e := &AccessControlError{Perm: NewFilePermission("/x", "read"), Domain: "applet", User: "alice"}
	msg := e.Error()
	for _, want := range []string{"access denied", "/x", "applet", "alice"} {
		if !contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestCheckGranted(t *testing.T) {
	runOnThread(t, func(th *vm.Thread) {
		th.PushFrame(vm.Frame{Class: "App", Domain: domainWith("app", NewRuntimePermission("ok"))})
		defer th.PopFrame()
		if !CheckGranted(th, NewRuntimePermission("ok")) {
			t.Error("granted permission reported denied")
		}
		if CheckGranted(th, NewRuntimePermission("nope")) {
			t.Error("denied permission reported granted")
		}
	})
}

// TestStackExtensionProperties: pushing a fully-trusted frame never
// changes a decision; pushing an unprivileged frame never turns a
// denial into an allowance.
func TestStackExtensionProperties(t *testing.T) {
	trusted := domainWith("sys", AllPermission{})
	weak := domainWith("weak")
	strong := domainWith("strong", NewFilePermission("/data/-", "read"))
	probe := NewFilePermission("/data/x", "read")

	stacks := [][]*ProtectionDomain{
		{},
		{strong},
		{weak},
		{strong, strong},
		{strong, weak},
	}
	for _, base := range stacks {
		runOnThread(t, func(th *vm.Thread) {
			for _, d := range base {
				th.PushFrame(vm.Frame{Class: d.Name, Domain: d})
			}
			before := CheckPermission(th, probe) == nil

			// Trusted frame: decision unchanged.
			th.PushFrame(vm.Frame{Class: "sys", Domain: trusted})
			if got := CheckPermission(th, probe) == nil; got != before {
				t.Errorf("trusted frame changed decision: %v -> %v (stack %v)", before, got, base)
			}
			th.PopFrame()

			// Weak frame: may deny, must never newly allow.
			th.PushFrame(vm.Frame{Class: "weak", Domain: weak})
			if got := CheckPermission(th, probe) == nil; got && !before {
				t.Errorf("weak frame turned denial into allowance (stack %v)", base)
			}
			th.PopFrame()
		})
	}
}
