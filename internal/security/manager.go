package security

import (
	"strconv"

	"mpj/internal/vm"
)

// Manager is the security-manager interface consulted by sensitive
// system operations. The multi-processing platform installs exactly one
// *system* security manager (Section 5.6); applications may install
// their own managers in their private System class copies, but those
// are never consulted by system code.
type Manager interface {
	// CheckPermission checks a generic permission for the calling
	// thread.
	CheckPermission(t *vm.Thread, perm Permission) error
	// CheckThreadAccess checks whether the calling thread may modify
	// the target thread.
	CheckThreadAccess(t *vm.Thread, target *vm.Thread) error
	// CheckGroupAccess checks whether the calling thread may modify the
	// target thread group.
	CheckGroupAccess(t *vm.Thread, g *vm.ThreadGroup) error
}

// SystemManager implements the system security manager of Section 5.6,
// whose primary purpose is protecting applications from each other:
//
//   - a thread T may access a thread U if T's thread group is an
//     ancestor of U's thread group; otherwise T needs
//     RuntimePermission("modifyThread");
//   - a thread T may access a thread group G if T's group is an
//     ancestor of G; otherwise T needs
//     RuntimePermission("modifyThreadGroup");
//   - public members are reflectively accessible; non-public member
//     access needs ReflectPermission("accessDeclaredMembers");
//   - every other security-relevant decision is delegated to the
//     AccessController (i.e. code needs the appropriate permission).
type SystemManager struct{}

var _ Manager = (*SystemManager)(nil)

// NewSystemManager returns the system security manager.
func NewSystemManager() *SystemManager { return &SystemManager{} }

// CheckPermission implements Manager by delegating to the
// AccessController.
func (m *SystemManager) CheckPermission(t *vm.Thread, perm Permission) error {
	return CheckPermission(t, perm)
}

// CheckThreadAccess implements the thread-access rule.
func (m *SystemManager) CheckThreadAccess(t *vm.Thread, target *vm.Thread) error {
	if t.Group().IsAncestorOf(target.Group()) {
		return nil
	}
	return CheckPermission(t, NewRuntimePermission("modifyThread"))
}

// CheckGroupAccess implements the thread-group-access rule.
func (m *SystemManager) CheckGroupAccess(t *vm.Thread, g *vm.ThreadGroup) error {
	if t.Group().IsAncestorOf(g) {
		return nil
	}
	return CheckPermission(t, NewRuntimePermission("modifyThreadGroup"))
}

// CheckMemberAccess implements the reflection rule: public members are
// freely accessible, non-public member access requires
// ReflectPermission.
func (m *SystemManager) CheckMemberAccess(t *vm.Thread, public bool) error {
	if public {
		return nil
	}
	return CheckPermission(t, NewReflectPermission("accessDeclaredMembers"))
}

// CheckRead checks file read access.
func (m *SystemManager) CheckRead(t *vm.Thread, path string) error {
	return CheckPermission(t, NewFilePermission(path, ActionRead))
}

// CheckWrite checks file write access.
func (m *SystemManager) CheckWrite(t *vm.Thread, path string) error {
	return CheckPermission(t, NewFilePermission(path, ActionWrite))
}

// CheckDelete checks file delete access — the paper's running example
// ("securityManager.checkDelete()").
func (m *SystemManager) CheckDelete(t *vm.Thread, path string) error {
	return CheckPermission(t, NewFilePermission(path, ActionDelete))
}

// CheckExec checks file execute access.
func (m *SystemManager) CheckExec(t *vm.Thread, path string) error {
	return CheckPermission(t, NewFilePermission(path, ActionExecute))
}

// CheckConnect checks an outbound network connection.
func (m *SystemManager) CheckConnect(t *vm.Thread, host string, port int) error {
	return CheckPermission(t, NewSocketPermission(host+":"+strconv.Itoa(port), ActionConnect))
}

// CheckListen checks opening a listener.
func (m *SystemManager) CheckListen(t *vm.Thread, host string, port int) error {
	return CheckPermission(t, NewSocketPermission(host+":"+strconv.Itoa(port), ActionListen))
}

// CheckAccept checks accepting an inbound connection.
func (m *SystemManager) CheckAccept(t *vm.Thread, host string, port int) error {
	return CheckPermission(t, NewSocketPermission(host+":"+strconv.Itoa(port), ActionAccept))
}

// CheckPropertyRead checks reading a system property.
func (m *SystemManager) CheckPropertyRead(t *vm.Thread, key string) error {
	return CheckPermission(t, NewPropertyPermission(key, ActionRead))
}

// CheckPropertyWrite checks writing a system property.
func (m *SystemManager) CheckPropertyWrite(t *vm.Thread, key string) error {
	return CheckPermission(t, NewPropertyPermission(key, ActionWrite))
}

// CheckExitVM checks the right to halt the whole virtual machine (as
// opposed to exiting one application).
func (m *SystemManager) CheckExitVM(t *vm.Thread) error {
	return CheckPermission(t, NewRuntimePermission("exitVM"))
}

// CheckSetUser checks the right to change the running user of an
// application — the privilege the login program holds (Section 5.2).
func (m *SystemManager) CheckSetUser(t *vm.Thread) error {
	return CheckPermission(t, NewRuntimePermission("setUser"))
}

// CheckCreateLoader checks the right to create class loaders.
func (m *SystemManager) CheckCreateLoader(t *vm.Thread) error {
	return CheckPermission(t, NewRuntimePermission("createClassLoader"))
}

// CheckSetIO checks the right to rebind another application's standard
// streams.
func (m *SystemManager) CheckSetIO(t *vm.Thread) error {
	return CheckPermission(t, NewRuntimePermission("setIO"))
}
