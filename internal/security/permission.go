// Package security implements the JDK-1.2-style security framework the
// paper builds on (Gong et al., "Going Beyond the Sandbox"), extended
// with the paper's contribution: user-based access control combined with
// code-source-based access control (Section 5.3).
//
// The pieces are: typed Permissions with an Implies relation, CodeSource
// (signers + origin), ProtectionDomain, a Policy with grant entries for
// both code sources and users (plus a policy-file parser), an
// AccessController that walks the explicit per-thread frame stacks
// maintained by the vm package, and the system security manager of
// Section 5.6 that protects applications from each other.
package security

import (
	"fmt"
	"sort"
	"strings"
)

// Permission is a typed capability. A permission p implies a permission
// q when granting p should also grant q (e.g. file read on "/tmp/-"
// implies file read on "/tmp/a").
type Permission interface {
	// Type returns the permission class name, e.g. "file", "socket",
	// "runtime". Permissions of different types never imply each other.
	Type() string
	// Target returns the permission's target name (path, host:port,
	// runtime action name, ...).
	Target() string
	// Actions returns the canonicalized action list ("read,write"), or
	// "" for action-less permissions.
	Actions() string
	// Implies reports whether this permission subsumes other.
	Implies(other Permission) bool
}

// String formats a permission in policy-file syntax.
func String(p Permission) string {
	if p.Actions() == "" {
		return fmt.Sprintf("permission %s %q", p.Type(), p.Target())
	}
	return fmt.Sprintf("permission %s %q, %q", p.Type(), p.Target(), p.Actions())
}

// canonActions splits, trims, lowercases, de-duplicates and sorts a
// comma-separated action list.
func canonActions(actions string) []string {
	parts := strings.Split(actions, ",")
	set := make(map[string]bool, len(parts))
	for _, p := range parts {
		p = strings.ToLower(strings.TrimSpace(p))
		if p != "" {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func joinActions(actions []string) string { return strings.Join(actions, ",") }

// actionsSuperset reports whether have contains every element of want.
func actionsSuperset(have, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, a := range have {
		set[a] = true
	}
	for _, a := range want {
		if !set[a] {
			return false
		}
	}
	return true
}

// wildcardNameImplies implements the BasicPermission name matching of
// the JDK: "*" implies everything, "a.b.*" implies any name with prefix
// "a.b.", and otherwise names must match exactly.
func wildcardNameImplies(pattern, name string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, ".*") {
		return strings.HasPrefix(name, pattern[:len(pattern)-1])
	}
	return pattern == name
}

// AllPermission implies every other permission. It is granted to system
// code (the bootstrap code source).
type AllPermission struct{}

var _ Permission = AllPermission{}

// Type implements Permission.
func (AllPermission) Type() string { return "all" }

// Target implements Permission.
func (AllPermission) Target() string { return "<all permissions>" }

// Actions implements Permission.
func (AllPermission) Actions() string { return "" }

// Implies implements Permission: AllPermission implies everything.
func (AllPermission) Implies(Permission) bool { return true }

// RuntimePermission guards runtime operations: "exitVM", "setUser",
// "modifyThread", "modifyThreadGroup", "createClassLoader",
// "setSecurityManager", "setIO", ... Name matching follows
// BasicPermission wildcard rules.
type RuntimePermission struct {
	Name string
}

var _ Permission = RuntimePermission{}

// NewRuntimePermission returns a RuntimePermission for name.
func NewRuntimePermission(name string) RuntimePermission {
	return RuntimePermission{Name: name}
}

// Type implements Permission.
func (RuntimePermission) Type() string { return "runtime" }

// Target implements Permission.
func (p RuntimePermission) Target() string { return p.Name }

// Actions implements Permission.
func (RuntimePermission) Actions() string { return "" }

// Implies implements Permission.
func (p RuntimePermission) Implies(other Permission) bool {
	o, ok := other.(RuntimePermission)
	return ok && wildcardNameImplies(p.Name, o.Name)
}

// PropertyPermission guards access to system properties, with "read"
// and/or "write" actions and BasicPermission-style name wildcards.
type PropertyPermission struct {
	Name    string
	actions []string
}

var _ Permission = PropertyPermission{}

// NewPropertyPermission returns a PropertyPermission for the property
// name and comma-separated actions ("read", "write" or "read,write").
func NewPropertyPermission(name, actions string) PropertyPermission {
	return PropertyPermission{Name: name, actions: canonActions(actions)}
}

// Type implements Permission.
func (PropertyPermission) Type() string { return "property" }

// Target implements Permission.
func (p PropertyPermission) Target() string { return p.Name }

// Actions implements Permission.
func (p PropertyPermission) Actions() string { return joinActions(p.actions) }

// Implies implements Permission.
func (p PropertyPermission) Implies(other Permission) bool {
	o, ok := other.(PropertyPermission)
	if !ok {
		return false
	}
	return wildcardNameImplies(p.Name, o.Name) && actionsSuperset(p.actions, o.actions)
}

// ReflectPermission guards reflective access to non-public members
// (Section 5.6: "access to non-public members needs an appropriate
// permission").
type ReflectPermission struct {
	Name string
}

var _ Permission = ReflectPermission{}

// NewReflectPermission returns a ReflectPermission for name
// (canonically "accessDeclaredMembers").
func NewReflectPermission(name string) ReflectPermission {
	return ReflectPermission{Name: name}
}

// Type implements Permission.
func (ReflectPermission) Type() string { return "reflect" }

// Target implements Permission.
func (p ReflectPermission) Target() string { return p.Name }

// Actions implements Permission.
func (ReflectPermission) Actions() string { return "" }

// Implies implements Permission.
func (p ReflectPermission) Implies(other Permission) bool {
	o, ok := other.(ReflectPermission)
	return ok && wildcardNameImplies(p.Name, o.Name)
}

// AWTPermission guards windowing-system operations such as reading
// events that belong to other applications' windows.
type AWTPermission struct {
	Name string
}

var _ Permission = AWTPermission{}

// NewAWTPermission returns an AWTPermission for name.
func NewAWTPermission(name string) AWTPermission { return AWTPermission{Name: name} }

// Type implements Permission.
func (AWTPermission) Type() string { return "awt" }

// Target implements Permission.
func (p AWTPermission) Target() string { return p.Name }

// Actions implements Permission.
func (AWTPermission) Actions() string { return "" }

// Implies implements Permission.
func (p AWTPermission) Implies(other Permission) bool {
	o, ok := other.(AWTPermission)
	return ok && wildcardNameImplies(p.Name, o.Name)
}

// UserPermission is the paper's new permission kind (Section 5.3): code
// sources granted it may *exercise the permissions of the running
// user*. When the AccessController encounters a protection domain that
// holds UserPermission, it consults the permissions granted to the
// application's current user in addition to the domain's own static
// permissions. Local applications typically hold it; downloaded applets
// do not.
type UserPermission struct{}

var _ Permission = UserPermission{}

// Type implements Permission.
func (UserPermission) Type() string { return "user" }

// Target implements Permission.
func (UserPermission) Target() string { return "exerciseUserPermissions" }

// Actions implements Permission.
func (UserPermission) Actions() string { return "" }

// Implies implements Permission: only another UserPermission.
func (UserPermission) Implies(other Permission) bool {
	_, ok := other.(UserPermission)
	return ok
}
