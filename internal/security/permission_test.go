package security

import (
	"testing"
)

func TestFilePermissionImplies(t *testing.T) {
	tests := []struct {
		pPath, pActs string
		oPath, oActs string
		want         bool
	}{
		{"/a/b", "read", "/a/b", "read", true},
		{"/a/b", "read,write", "/a/b", "read", true},
		{"/a/b", "read", "/a/b", "read,write", false},
		{"/a/b", "read", "/a/c", "read", false},
		{"/a/*", "read", "/a/b", "read", true},
		{"/a/*", "read", "/a", "read", false},
		{"/a/*", "read", "/a/b/c", "read", false},
		{"/a/-", "read", "/a/b", "read", true},
		{"/a/-", "read", "/a/b/c/d", "read", true},
		{"/a/-", "read", "/a", "read", false},
		{"/a/-", "read", "/ab", "read", false},
		{"/a/-", "read", "/a/*", "read", true},
		{"/a/-", "read", "/a/b/-", "read", true},
		{"/a/*", "read", "/a/-", "read", false},
		{"/a/*", "read", "/a/*", "read", true},
		{"/a/*", "read", "/a/b/*", "read", false},
		{"/-", "read", "/anything/at/all", "read", true},
		{"/-", "read", "/", "read", false},
		{AllFiles, "read", "/x", "read", true},
		{AllFiles, "read", AllFiles, "read", true},
		{"/x", "read", AllFiles, "read", false},
		{"/home/alice/-", "read,write,delete", "/home/alice/notes.txt", "delete", true},
		{"/home/alice/-", "read", "/home/bob/secret", "read", false},
	}
	for _, tc := range tests {
		p := NewFilePermission(tc.pPath, tc.pActs)
		o := NewFilePermission(tc.oPath, tc.oActs)
		if got := p.Implies(o); got != tc.want {
			t.Errorf("FilePermission(%q,%q).Implies(%q,%q) = %v, want %v",
				tc.pPath, tc.pActs, tc.oPath, tc.oActs, got, tc.want)
		}
	}
}

func TestFilePermissionPathCleaning(t *testing.T) {
	p := NewFilePermission("/a//b/../c", "read")
	if p.Path != "/a/c" {
		t.Fatalf("cleaned path = %q, want /a/c", p.Path)
	}
	w := NewFilePermission("/a//b/./*", "read")
	if w.Path != "/a/b/*" {
		t.Fatalf("cleaned wildcard = %q, want /a/b/*", w.Path)
	}
	r := NewFilePermission("/a/b/../-", "read")
	if r.Path != "/a/-" {
		t.Fatalf("cleaned recursive = %q, want /a/-", r.Path)
	}
}

func TestFilePermissionDoesNotImplyOtherTypes(t *testing.T) {
	f := NewFilePermission("/-", "read")
	if f.Implies(NewRuntimePermission("exitVM")) {
		t.Fatal("file permission must not imply runtime permission")
	}
	if f.Implies(NewSocketPermission("*", "connect")) {
		t.Fatal("file permission must not imply socket permission")
	}
}

func TestSocketPermissionImplies(t *testing.T) {
	tests := []struct {
		pTarget, pActs string
		oTarget, oActs string
		want           bool
	}{
		{"example.org:80", "connect", "example.org:80", "connect", true},
		{"example.org:80", "connect", "example.org:81", "connect", false},
		{"example.org", "connect", "example.org:8080", "connect", true},
		{"example.org:1024-", "connect", "example.org:8080", "connect", true},
		{"example.org:1024-", "connect", "example.org:80", "connect", false},
		{"example.org:-1023", "listen", "example.org:80", "listen", true},
		{"example.org:80-90", "connect", "example.org:85", "connect", true},
		{"example.org:80-90", "connect", "example.org:95", "connect", false},
		{"*.example.org", "connect", "www.example.org", "connect", true},
		{"*.example.org", "connect", "example.org", "connect", false},
		{"*", "connect", "anything", "connect", true},
		{"example.org", "connect,accept", "example.org", "accept", true},
		{"example.org", "accept", "example.org", "connect", false},
		// connect implies resolve
		{"example.org", "connect", "example.org", "resolve", true},
		{"*.example.org", "connect", "*.sub.example.org", "connect", true},
		{"*.sub.example.org", "connect", "*.example.org", "connect", false},
	}
	for _, tc := range tests {
		p := NewSocketPermission(tc.pTarget, tc.pActs)
		o := NewSocketPermission(tc.oTarget, tc.oActs)
		if got := p.Implies(o); got != tc.want {
			t.Errorf("SocketPermission(%q,%q).Implies(%q,%q) = %v, want %v",
				tc.pTarget, tc.pActs, tc.oTarget, tc.oActs, got, tc.want)
		}
	}
}

func TestSocketPermissionTargetRoundtrip(t *testing.T) {
	tests := []struct{ target, want string }{
		{"host:80", "host:80"},
		{"host:80-90", "host:80-90"},
		{"host", "host"},
		{"HOST:80", "host:80"},
	}
	for _, tc := range tests {
		p := NewSocketPermission(tc.target, "connect")
		if got := p.Target(); got != tc.want {
			t.Errorf("Target(%q) = %q, want %q", tc.target, got, tc.want)
		}
	}
}

func TestBasicPermissionWildcards(t *testing.T) {
	tests := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything", true},
		{"exitVM", "exitVM", true},
		{"exitVM", "setUser", false},
		{"thread.*", "thread.modify", true},
		{"thread.*", "threadmodify", false},
		{"thread.*", "thread.", true},
	}
	for _, tc := range tests {
		p := NewRuntimePermission(tc.pattern)
		o := NewRuntimePermission(tc.name)
		if got := p.Implies(o); got != tc.want {
			t.Errorf("RuntimePermission(%q).Implies(%q) = %v, want %v", tc.pattern, tc.name, got, tc.want)
		}
	}
}

func TestPropertyPermission(t *testing.T) {
	p := NewPropertyPermission("os.*", "read")
	if !p.Implies(NewPropertyPermission("os.name", "read")) {
		t.Fatal("os.* read must imply os.name read")
	}
	if p.Implies(NewPropertyPermission("os.name", "write")) {
		t.Fatal("read must not imply write")
	}
	rw := NewPropertyPermission("*", "read,write")
	if !rw.Implies(NewPropertyPermission("user.dir", "write")) {
		t.Fatal("*/read,write must imply user.dir write")
	}
}

func TestAllPermissionImpliesEverything(t *testing.T) {
	all := AllPermission{}
	perms := []Permission{
		NewFilePermission("/etc/passwd", "read,write,delete"),
		NewSocketPermission("*", "connect,accept,listen"),
		NewRuntimePermission("exitVM"),
		NewPropertyPermission("*", "read,write"),
		NewReflectPermission("accessDeclaredMembers"),
		NewAWTPermission("readOtherAppEvents"),
		UserPermission{},
		AllPermission{},
	}
	for _, p := range perms {
		if !all.Implies(p) {
			t.Errorf("AllPermission must imply %s", String(p))
		}
	}
}

func TestUserPermissionImpliesOnlyItself(t *testing.T) {
	up := UserPermission{}
	if !up.Implies(UserPermission{}) {
		t.Fatal("UserPermission must imply UserPermission")
	}
	if up.Implies(NewFilePermission("/x", "read")) {
		t.Fatal("UserPermission must not imply file access by itself")
	}
}

func TestPermissionStringFormat(t *testing.T) {
	tests := []struct {
		p    Permission
		want string
	}{
		{NewRuntimePermission("exitVM"), `permission runtime "exitVM"`},
		{NewFilePermission("/a", "write,read"), `permission file "/a", "read,write"`},
		{UserPermission{}, `permission user "exerciseUserPermissions"`},
	}
	for _, tc := range tests {
		if got := String(tc.p); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestPermissionsCollection(t *testing.T) {
	c := NewPermissions(
		NewFilePermission("/home/alice/-", "read,write"),
		NewRuntimePermission("setUser"),
	)
	if !c.Implies(NewFilePermission("/home/alice/a.txt", "read")) {
		t.Fatal("collection should imply contained file read")
	}
	if c.Implies(NewFilePermission("/home/bob/a.txt", "read")) {
		t.Fatal("collection should not imply foreign file read")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	c.Add(AllPermission{})
	if !c.Implies(NewSocketPermission("*", "accept")) {
		t.Fatal("AllPermission fast path broken")
	}

	var nilC *Permissions
	if nilC.Implies(NewRuntimePermission("x")) {
		t.Fatal("nil collection implies nothing")
	}
	if nilC.Len() != 0 || nilC.Elements() != nil {
		t.Fatal("nil collection must be empty")
	}
}

func TestPermissionsUnion(t *testing.T) {
	a := NewPermissions(NewFilePermission("/a", "read"))
	b := NewPermissions(NewFilePermission("/b", "read"))
	u := Union(a, b)
	if !u.Implies(NewFilePermission("/a", "read")) || !u.Implies(NewFilePermission("/b", "read")) {
		t.Fatal("union must imply both sides")
	}
	u2 := Union(nil, b)
	if !u2.Implies(NewFilePermission("/b", "read")) {
		t.Fatal("union with nil must keep other side")
	}
	if u2.Implies(NewFilePermission("/a", "read")) {
		t.Fatal("union leaked a permission")
	}
}

func TestPermissionsStringOutput(t *testing.T) {
	c := NewPermissions(NewRuntimePermission("exitVM"))
	if got := c.String(); got != "  permission runtime \"exitVM\";\n" {
		t.Fatalf("collection string = %q", got)
	}
}
