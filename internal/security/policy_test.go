package security

import (
	"strings"
	"testing"
)

// paperPolicy encodes the exact four-rule example policy of Section 5.3:
//  1. All local applications can exercise their running users' perms.
//  2. The backup application can read all files.
//  3. User Alice can access all files in /home/alice.
//  4. User Bob can access all files in /home/bob.
const paperPolicy = `
// Rule 1: all local applications may exercise user permissions.
grant codeBase "file:/local/-" {
    permission user;
};
// Rule 2: the backup application can read all files.
grant codeBase "file:/local/backup" {
    permission file "<<ALL FILES>>", "read";
};
// Rule 3 and 4: per-user home directory access.
grant user "alice" {
    permission file "/home/alice/-", "read,write,delete";
};
grant user "bob" {
    permission file "/home/bob/-", "read,write,delete";
};
`

func TestParsePaperPolicy(t *testing.T) {
	pol, err := ParsePolicy(paperPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pol.Grants()); got != 4 {
		t.Fatalf("grants = %d, want 4", got)
	}

	editor := NewCodeSource("file:/local/editor")
	backup := NewCodeSource("file:/local/backup")
	applet := NewCodeSource("http://evil.example.org/applet")

	if !pol.PermissionsForCode(editor).Implies(UserPermission{}) {
		t.Fatal("local editor must hold UserPermission (rule 1)")
	}
	if !pol.PermissionsForCode(backup).Implies(NewFilePermission("/etc/shadow", "read")) {
		t.Fatal("backup must read all files (rule 2)")
	}
	if pol.PermissionsForCode(editor).Implies(NewFilePermission("/etc/shadow", "read")) {
		t.Fatal("editor must not read all files by code source alone")
	}
	if pol.PermissionsForCode(applet).Implies(UserPermission{}) {
		t.Fatal("remote applet must not hold UserPermission")
	}

	alice := pol.PermissionsForUser("alice")
	if !alice.Implies(NewFilePermission("/home/alice/notes.txt", "write")) {
		t.Fatal("alice must write her own files (rule 3)")
	}
	if alice.Implies(NewFilePermission("/home/bob/notes.txt", "read")) {
		t.Fatal("alice must not read bob's files")
	}
	if got := pol.PermissionsForUser("mallory").Len(); got != 0 {
		t.Fatalf("unknown user has %d perms, want 0", got)
	}
}

func TestPolicySignedByClause(t *testing.T) {
	pol := MustParsePolicy(`
grant signedBy "sun,princeton" {
    permission runtime "setUser";
};`)
	both := NewCodeSource("http://x/app", "sun", "princeton")
	one := NewCodeSource("http://x/app", "sun")
	none := NewCodeSource("http://x/app")
	if !pol.PermissionsForCode(both).Implies(NewRuntimePermission("setUser")) {
		t.Fatal("doubly-signed code must get the grant")
	}
	if pol.PermissionsForCode(one).Implies(NewRuntimePermission("setUser")) {
		t.Fatal("grant requires all listed signers")
	}
	if pol.PermissionsForCode(none).Implies(NewRuntimePermission("setUser")) {
		t.Fatal("unsigned code must not get the grant")
	}
}

func TestPolicyCodeBaseWildcards(t *testing.T) {
	pol := MustParsePolicy(`
grant codeBase "file:/apps/*" {
    permission runtime "a";
};
grant codeBase "file:/deep/-" {
    permission runtime "b";
};
grant codeBase "file:/exact" {
    permission runtime "c";
};
grant {
    permission runtime "everyone";
};`)
	tests := []struct {
		loc  string
		perm string
		want bool
	}{
		{"file:/apps/x", "a", true},
		{"file:/apps/x/y", "a", false},
		{"file:/apps", "a", false},
		{"file:/deep/x/y/z", "b", true},
		{"file:/deep", "b", true},
		{"file:/exact", "c", true},
		{"file:/exact/x", "c", false},
		{"anything://at.all/", "everyone", true},
		{"", "everyone", true},
	}
	for _, tc := range tests {
		cs := NewCodeSource(tc.loc)
		got := pol.PermissionsForCode(cs).Implies(NewRuntimePermission(tc.perm))
		if got != tc.want {
			t.Errorf("loc %q perm %q: got %v, want %v", tc.loc, tc.perm, got, tc.want)
		}
	}
}

func TestPolicyUserWildcard(t *testing.T) {
	pol := MustParsePolicy(`
grant user "*" {
    permission file "/tmp/-", "read,write";
};`)
	for _, u := range []string{"alice", "bob", "anyone"} {
		if !pol.PermissionsForUser(u).Implies(NewFilePermission("/tmp/x", "write")) {
			t.Errorf("user %q should have /tmp write", u)
		}
	}
}

func TestParsePolicyJavaAliases(t *testing.T) {
	pol := MustParsePolicy(`
grant {
    permission java.io.FilePermission "/a", "read";
    permission java.net.SocketPermission "host:80", "connect";
    permission java.lang.RuntimePermission "exitVM";
    permission java.util.PropertyPermission "os.name", "read";
    permission java.security.AllPermission;
};`)
	g := pol.Grants()[0]
	if len(g.Perms) != 5 {
		t.Fatalf("perms = %d, want 5", len(g.Perms))
	}
}

func TestParsePolicyComments(t *testing.T) {
	pol := MustParsePolicy(`
// line comment
/* block
   comment */
grant { permission runtime "x"; };
`)
	if len(pol.Grants()) != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	tests := []struct{ name, text string }{
		{"missing grant keyword", `allow { permission runtime "x"; };`},
		{"unterminated string", `grant { permission runtime "x; };`},
		{"unknown clause", `grant frobnicate "x" { };`},
		{"unknown permission type", `grant { permission warp "x"; };`},
		{"missing semicolon", `grant { permission runtime "x" }`},
		{"missing target", `grant { permission file; };`},
		{"unterminated block comment", `/* grant`},
		{"stray character", `grant @ { };`},
		{"missing brace", `grant permission runtime "x";`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePolicy(tc.text); err == nil {
				t.Fatalf("expected parse error for %q", tc.text)
			}
		})
	}
}

func TestPolicyStringRendersClauses(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	text := pol.String()
	for _, want := range []string{`codeBase "file:/local/-"`, `user "alice"`, `permission file "/home/bob/-"`} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered policy missing %q:\n%s", want, text)
		}
	}
}

func TestDomainForDerivesExercisesUser(t *testing.T) {
	pol := MustParsePolicy(paperPolicy)
	d := pol.DomainFor("editor", NewCodeSource("file:/local/editor"))
	if !d.ExercisesUser {
		t.Fatal("local code domain must exercise user permissions")
	}
	ad := pol.DomainFor("applet", NewCodeSource("http://remote/applet"))
	if ad.ExercisesUser {
		t.Fatal("remote code domain must not exercise user permissions")
	}
}

func TestGrantStringFormats(t *testing.T) {
	g := &Grant{CodeBase: "file:/x", Signers: []string{"s1", "s2"}, Perms: []Permission{NewRuntimePermission("r")}}
	s := g.String()
	for _, want := range []string{`codeBase "file:/x"`, `signedBy "s1,s2"`, `permission runtime "r";`} {
		if !strings.Contains(s, want) {
			t.Errorf("grant string missing %q: %s", want, s)
		}
	}
}

func TestBuildPermissionRejectsEmptyTargets(t *testing.T) {
	for _, typ := range []string{"file", "socket", "runtime", "property", "awt"} {
		if _, err := BuildPermission(typ, "", ""); err == nil {
			t.Errorf("BuildPermission(%q, \"\") should fail", typ)
		}
	}
	if _, err := BuildPermission("reflect", "", ""); err != nil {
		t.Errorf("reflect permission should default its target: %v", err)
	}
	if _, err := BuildPermission("user", "", ""); err != nil {
		t.Errorf("user permission needs no target: %v", err)
	}
}
