package playground

import (
	"fmt"
	"sync"

	"mpj/internal/core"
)

// ServiceKey is the platform-service slot the origin VM publishes its
// playground Manager under (Platform.SetService / Service); the shell
// builtin and the rexec "pool" path find the manager there.
const ServiceKey = "playground"

// ManagerOf fetches the origin platform's playground manager, if one
// was published.
func ManagerOf(p *core.Platform) (*Manager, bool) {
	v, ok := p.Service(ServiceKey)
	if !ok {
		return nil, false
	}
	m, ok := v.(*Manager)
	return m, ok
}

// Manager owns an origin VM's playground: the dispatcher pool plus
// the locally-booted worker VMs behind it. Worker platforms share the
// origin's netsim network (each under its own hostname) but are
// otherwise fully separate VMs with their own kernels, filesystems,
// and user databases — which is the point of the playground: code
// runs over there.
//
// Worker platforms get their program registry through the install
// hook, injected by the embedder (mvmsh passes coreutils.InstallAll)
// so this package does not depend on any program collection.
type Manager struct {
	origin  *core.Platform
	pool    *Pool
	install func(*core.Platform) error

	mu       sync.Mutex
	local    map[string]*localWorker // by "host:port"
	nextHost int
	closed   bool
}

// localWorker pairs a locally-booted worker platform with its daemon.
type localWorker struct {
	platform *core.Platform
	worker   *Worker
}

// NewManager builds a manager (and its pool) on the origin platform.
// install, if non-nil, populates each new worker platform's program
// registry before its daemon starts.
func NewManager(origin *core.Platform, cfg Config, install func(*core.Platform) error) *Manager {
	return &Manager{
		origin:  origin,
		pool:    NewPool(origin, cfg),
		install: install,
		local:   make(map[string]*localWorker),
	}
}

// Pool returns the dispatcher.
func (m *Manager) Pool() *Pool { return m.pool }

// AddLocalWorker boots a fresh worker VM on the origin's network
// under the given hostname (auto-named "pgw<N>" when empty), starts
// its daemon on DefaultPort, and joins it to the pool. Returns the
// worker's pool address.
func (m *Manager) AddLocalWorker(host string) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrPoolClosed
	}
	if host == "" {
		host = fmt.Sprintf("pgw%d", m.nextHost)
		m.nextHost++
	}
	m.mu.Unlock()

	wp, err := core.NewPlatform(core.Config{
		Name:     "playground-" + host,
		Net:      m.origin.Net(),
		HostName: host,
	})
	if err != nil {
		return "", fmt.Errorf("playground: boot worker %s: %w", host, err)
	}
	if m.install != nil {
		if err := m.install(wp); err != nil {
			wp.Shutdown()
			return "", fmt.Errorf("playground: install programs on %s: %w", host, err)
		}
	}
	w, err := StartWorker(wp, host, DefaultPort, WorkerConfig{})
	if err != nil {
		wp.Shutdown()
		return "", err
	}
	addr := fmt.Sprintf("%s:%d", host, DefaultPort)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		w.Close()
		wp.Shutdown()
		return "", ErrPoolClosed
	}
	m.local[addr] = &localWorker{platform: wp, worker: w}
	m.mu.Unlock()
	if err := m.pool.AddWorker(host, DefaultPort); err != nil {
		m.mu.Lock()
		delete(m.local, addr)
		m.mu.Unlock()
		w.Close()
		wp.Shutdown()
		return "", err
	}
	return addr, nil
}

// LocalWorker returns the worker daemon behind a local pool address
// (tests use it to count connections and sessions).
func (m *Manager) LocalWorker(addr string) (*Worker, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lw, ok := m.local[addr]
	if !ok {
		return nil, false
	}
	return lw.worker, true
}

// KillWorker crashes a local worker abruptly — daemon, connections
// and platform all torn down with no warning to the dispatcher, which
// must discover the death through the connection or the heartbeat.
// This is the failure-injection hook the worker-loss tests drive.
func (m *Manager) KillWorker(addr string) error {
	m.mu.Lock()
	lw, ok := m.local[addr]
	delete(m.local, addr)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("playground: no local worker %s", addr)
	}
	lw.worker.Close()
	lw.platform.Shutdown()
	return nil
}

// RemoveWorker takes a local worker out of service deliberately: the
// pool fails it over first, then the daemon and platform shut down.
func (m *Manager) RemoveWorker(addr string) error {
	if err := m.pool.Remove(addr); err != nil {
		return err
	}
	return m.KillWorker(addr)
}

// Drain stops new placements on a worker (local or not).
func (m *Manager) Drain(addr string) error { return m.pool.Drain(addr) }

// Workers lists the pool's workers.
func (m *Manager) Workers() []WorkerInfo { return m.pool.Workers() }

// Stats snapshots the pool counters.
func (m *Manager) Stats() Stats { return m.pool.Stats() }

// Submit places a session through the pool.
func (m *Manager) Submit(spec SessionSpec) (*Session, error) { return m.pool.Submit(spec) }

// Close shuts the pool down and stops every local worker.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	local := make([]*localWorker, 0, len(m.local))
	for _, lw := range m.local {
		local = append(local, lw)
	}
	m.local = make(map[string]*localWorker)
	m.mu.Unlock()
	m.pool.Close()
	for _, lw := range local {
		lw.worker.Close()
		lw.platform.Shutdown()
	}
}
