package playground

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"mpj/internal/core"
	"mpj/internal/events"
	"mpj/internal/netsim"
	"mpj/internal/objspace"
	"mpj/internal/streams"
	"mpj/internal/user"
	"mpj/internal/vm"
)

// Exit codes surfaced for playground-level failures.
const (
	// ExitOpenFailed is reported when the session program cannot be
	// launched on the worker.
	ExitOpenFailed = 255
	// ExitAuthFailed is reported when the open request's credentials
	// do not authenticate on the worker.
	ExitAuthFailed = 254
	// ExitWorkerLost is recorded by the dispatcher when a worker dies
	// with the session in flight.
	ExitWorkerLost = 253
	// ExitCanceled is the exit code a canceled session's application
	// is asked to finish with.
	ExitCanceled = 130
)

// SandboxUser is the default sacrificial account remote sessions run
// as on a worker — the playground model: untrusted code executes under
// a throwaway identity regardless of which origin user submitted it.
const SandboxUser = "sandbox"

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// SessionUser is the sacrificial account credential-less sessions
	// run as; it is created (with a home directory and the standard
	// per-user grant) if missing. Defaults to SandboxUser.
	SessionUser string
	// InboxCap bounds each session's inbound proxied-event queue;
	// overflow drops events (counted per session). Defaults to 1024.
	InboxCap int
}

// Worker turns a platform into a playground worker: a daemon accepting
// multiplexed session traffic from a dispatcher. Every session is a
// real application on this platform — its threads, streams, and
// permission checks are the worker VM's own.
type Worker struct {
	platform *core.Platform
	listener *netsim.Listener
	addr     netsim.Addr
	sandbox  *user.User
	inboxCap int

	mu     sync.Mutex
	conns  map[*workerConn]struct{}
	closed bool

	accepted atomic.Int64
	wg       sync.WaitGroup
}

// StartWorker binds the worker daemon on host:port of the platform's
// network and starts its accept loop on a VM system daemon thread.
func StartWorker(p *core.Platform, host string, port int, cfg WorkerConfig) (*Worker, error) {
	if cfg.SessionUser == "" {
		cfg.SessionUser = SandboxUser
	}
	if cfg.InboxCap <= 0 {
		cfg.InboxCap = 1024
	}
	sandbox, err := p.Users().Lookup(cfg.SessionUser)
	if err != nil {
		// The sandbox account's password is never accepted from the
		// wire (empty wire passwords select the sandbox path instead of
		// authenticating), so any value works; make it unguessable-ish
		// by tying it to the pointer-free platform name.
		sandbox, err = p.AddUser(cfg.SessionUser, "!playground!")
		if err != nil {
			return nil, fmt.Errorf("playground: create session user: %w", err)
		}
	}
	l, err := p.Net().Listen(host, port)
	if err != nil {
		return nil, fmt.Errorf("playground: start worker: %w", err)
	}
	w := &Worker{
		platform: p,
		listener: l,
		addr:     l.Addr(),
		sandbox:  sandbox,
		inboxCap: cfg.InboxCap,
		conns:    make(map[*workerConn]struct{}),
	}
	_, err = p.VM().SpawnThread(vm.ThreadSpec{
		Group:  p.VM().SystemGroup(),
		Name:   fmt.Sprintf("playground-%s", w.addr),
		Daemon: true,
		Run:    w.acceptLoop,
	})
	if err != nil {
		_ = l.Close()
		return nil, fmt.Errorf("playground: start worker: %w", err)
	}
	return w, nil
}

// Addr returns the worker's bound address.
func (w *Worker) Addr() netsim.Addr { return w.addr }

// Platform returns the worker's platform.
func (w *Worker) Platform() *core.Platform { return w.platform }

// ConnCount reports how many dispatcher connections were ever
// accepted — the multiplexing tests assert one per pool.
func (w *Worker) ConnCount() int64 { return w.accepted.Load() }

// SessionCount reports currently-live sessions across all connections.
func (w *Worker) SessionCount() int {
	w.mu.Lock()
	conns := make([]*workerConn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	n := 0
	for _, c := range conns {
		c.mu.Lock()
		n += len(c.sessions)
		c.mu.Unlock()
	}
	return n
}

// Close stops the worker abruptly: the listener and every dispatcher
// connection are torn down and live session applications are asked to
// exit. From the dispatcher's side this is indistinguishable from a
// crash — which is exactly what the failure tests want.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	conns := make([]*workerConn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	_ = w.listener.Close()
	for _, c := range conns {
		c.shutdown()
	}
	w.wg.Wait()
}

// acceptLoop serves dispatcher connections until the listener closes.
func (w *Worker) acceptLoop(t *vm.Thread) {
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			return
		}
		if t.Stopped() {
			_ = conn.Close()
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			_ = conn.Close()
			return
		}
		wc := &workerConn{w: w, m: newMux(conn), sessions: make(map[uint64]*workerSession)}
		w.conns[wc] = struct{}{}
		w.accepted.Add(1)
		w.wg.Add(1)
		w.mu.Unlock()
		go func() {
			defer w.wg.Done()
			wc.serve()
			w.mu.Lock()
			delete(w.conns, wc)
			w.mu.Unlock()
		}()
	}
}

// workerConn demultiplexes one dispatcher connection.
type workerConn struct {
	w *Worker
	m *mux

	mu       sync.Mutex
	sessions map[uint64]*workerSession
	down     bool
}

// serve runs the demux loop until the connection dies, then tears the
// surviving sessions down.
func (wc *workerConn) serve() {
	for {
		f, err := wc.m.recv()
		if err != nil {
			break
		}
		switch f.Op {
		case opOpen:
			wc.open(f)
		case opStdin:
			if s := wc.lookup(f.SID); s != nil {
				_, _ = s.stdinW.Write(f.Data)
			}
		case opStdinEOF:
			if s := wc.lookup(f.SID); s != nil {
				_ = s.stdinW.Close()
			}
		case opCancel:
			if s := wc.lookup(f.SID); s != nil {
				s.app.RequestExit(ExitCanceled)
			}
		case opWinOpened:
			if s := wc.lookup(f.SID); s != nil {
				s.ui.ack(f.Seq, f.Win, f.Str)
			}
		case opEvent:
			if s := wc.lookup(f.SID); s != nil {
				for _, we := range f.Evts {
					s.ui.deliver(we)
				}
			}
		case opPing:
			_ = wc.m.send(frame{Op: opPong})
		}
	}
	wc.shutdown()
}

// lookup resolves a session id.
func (wc *workerConn) lookup(sid uint64) *workerSession {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.sessions[sid]
}

// shutdown closes the connection and finishes every session on it.
func (wc *workerConn) shutdown() {
	wc.mu.Lock()
	if wc.down {
		wc.mu.Unlock()
		return
	}
	wc.down = true
	sessions := make([]*workerSession, 0, len(wc.sessions))
	for _, s := range wc.sessions {
		sessions = append(sessions, s)
	}
	wc.sessions = make(map[uint64]*workerSession)
	wc.mu.Unlock()
	wc.m.close()
	for _, s := range sessions {
		s.ui.close()
		_ = s.stdinW.Close()
		s.app.RequestExit(ExitWorkerLost)
	}
}

// open launches a session application for an opOpen frame.
func (wc *workerConn) open(f frame) {
	req := f.Open
	if req == nil {
		_ = wc.m.send(frame{Op: opOpenErr, SID: f.SID, Code: ExitOpenFailed, Str: "malformed open"})
		return
	}
	u := wc.w.sandbox
	if req.Password != "" {
		au, err := wc.w.platform.Users().Authenticate(req.User, req.Password)
		if err != nil {
			_ = wc.m.send(frame{Op: opOpenErr, SID: f.SID, Code: ExitAuthFailed, Str: err.Error()})
			return
		}
		u = au
	}

	stdinR, stdinW := streams.NewPipe(streams.DefaultBufferSize)
	s := &workerSession{wc: wc, id: f.SID, stdinW: stdinW}
	s.ui = newRemoteUI(s, wc.w.inboxCap)
	var stdin io.Reader = stdinR
	if req.HasStdin {
		// Ask the dispatcher for input only when the application
		// actually reads it (see opStdinReq).
		stdin = &demandReader{r: stdinR, req: func() {
			_ = wc.m.send(frame{Op: opStdinReq, SID: f.SID})
		}}
	} else {
		_ = stdinW.Close()
	}

	// Register before Exec: the session application may open a proxy
	// window (an opWinOpen/opWinOpened round trip routed by SID) before
	// Exec even returns.
	wc.mu.Lock()
	if wc.down {
		wc.mu.Unlock()
		s.ui.close()
		_ = stdinW.Close()
		return
	}
	wc.sessions[f.SID] = s
	wc.mu.Unlock()

	app, err := wc.w.platform.Exec(core.ExecSpec{
		Program: req.Program,
		Args:    req.Args,
		User:    u,
		Dir:     u.Home,
		Stdin:   streams.NewReadStream("playground-in", streams.OwnerSystem, stdin),
		Stdout:  streams.NewWriteStream("playground-out", streams.OwnerSystem, &frameWriter{m: wc.m, op: opStdout, sid: f.SID}),
		Stderr:  streams.NewWriteStream("playground-err", streams.OwnerSystem, &frameWriter{m: wc.m, op: opStderr, sid: f.SID}),
		Resources: map[string]any{
			UIResourceKey: s.ui,
		},
	})
	if err != nil {
		wc.remove(f.SID)
		s.ui.close()
		_ = stdinW.Close()
		_ = wc.m.send(frame{Op: opOpenErr, SID: f.SID, Code: ExitOpenFailed, Str: err.Error()})
		return
	}
	s.app = app
	go func() {
		code := app.WaitFor()
		wc.remove(f.SID)
		s.ui.close()
		_ = stdinW.Close()
		_ = wc.m.send(frame{Op: opExit, SID: f.SID, Code: code})
	}()
}

// remove detaches a finished session.
func (wc *workerConn) remove(sid uint64) {
	wc.mu.Lock()
	delete(wc.sessions, sid)
	wc.mu.Unlock()
}

// demandReader signals req exactly once, on the first Read.
type demandReader struct {
	r    io.Reader
	once sync.Once
	req  func()
}

func (d *demandReader) Read(p []byte) (int, error) {
	d.once.Do(d.req)
	return d.r.Read(p)
}

// workerSession is one session's worker-side state.
type workerSession struct {
	wc     *workerConn
	id     uint64
	app    *core.Application
	stdinW *streams.PipeWriter
	ui     *RemoteUI
}

// UIResourceKey is the application-resource slot the worker hands a
// session's UI proxy through; session code reaches it with UIOf.
const UIResourceKey = "playground.ui"

// ErrUIClosed is returned by remote UI operations once the session's
// connection or the UI itself is gone.
var ErrUIClosed = errors.New("playground: remote UI closed")

// ErrNoUI is returned by OpenWindow when the origin session has no
// owning application to mirror windows onto.
var ErrNoUI = errors.New("playground: session has no UI owner at the origin")

// UIOf returns the remote-UI proxy of a playground session
// application, if the calling code runs inside one.
func UIOf(ctx *core.Context) (*RemoteUI, bool) {
	v, ok := ctx.Resource(UIResourceKey)
	if !ok {
		return nil, false
	}
	ui, ok := v.(*RemoteUI)
	return ui, ok
}

// RemoteListener is a callback for origin input events proxied to the
// remote application. It runs on the session's event-proxy goroutine
// on the worker, with panics contained.
type RemoteListener func(e events.Event)

// winAck is an opWinOpened reply routed to its waiting OpenWindow.
type winAck struct {
	win    int64
	errStr string
}

// RemoteUI is the display proxy a remotely-executed application sees:
// windows it opens appear on the ORIGIN VM's display (owned by the
// origin application that submitted the session), origin input events
// on those windows flow back to its listeners, and events it posts
// surface on the origin display through the batched PostBatch path.
type RemoteUI struct {
	sess *workerSession
	done chan struct{}

	mu      sync.Mutex
	nextSeq uint64
	acks    map[uint64]chan winAck
	wins    map[int64]*RemoteWindow
	closed  bool

	inbox   *objspace.Mailbox
	dropped atomic.Int64
	panics  atomic.Int64
}

// newRemoteUI builds the proxy and starts its event-dispatch
// goroutine.
func newRemoteUI(s *workerSession, inboxCap int) *RemoteUI {
	ui := &RemoteUI{
		sess:  s,
		done:  make(chan struct{}),
		acks:  make(map[uint64]chan winAck),
		wins:  make(map[int64]*RemoteWindow),
		inbox: objspace.NewMailbox(inboxCap),
	}
	go ui.dispatchLoop()
	return ui
}

// OpenWindow asks the origin VM to open a mirror window and returns a
// handle bound to it. Blocks for the control round trip.
func (ui *RemoteUI) OpenWindow(title string) (*RemoteWindow, error) {
	ui.mu.Lock()
	if ui.closed {
		ui.mu.Unlock()
		return nil, ErrUIClosed
	}
	ui.nextSeq++
	seq := ui.nextSeq
	ch := make(chan winAck, 1)
	ui.acks[seq] = ch
	ui.mu.Unlock()

	if err := ui.sess.wc.m.send(frame{Op: opWinOpen, SID: ui.sess.id, Seq: seq, Str: title}); err != nil {
		ui.mu.Lock()
		delete(ui.acks, seq)
		ui.mu.Unlock()
		return nil, ErrUIClosed
	}
	select {
	case ack := <-ch:
		if ack.win == 0 {
			return nil, fmt.Errorf("playground: open window: %s", ack.errStr)
		}
		w := &RemoteWindow{ui: ui, id: ack.win, listeners: make(map[string][]RemoteListener)}
		ui.mu.Lock()
		ui.wins[ack.win] = w
		ui.mu.Unlock()
		return w, nil
	case <-ui.done:
		return nil, ErrUIClosed
	}
}

// ack routes an opWinOpened reply to its waiter.
func (ui *RemoteUI) ack(seq uint64, win int64, errStr string) {
	ui.mu.Lock()
	ch := ui.acks[seq]
	delete(ui.acks, seq)
	ui.mu.Unlock()
	if ch != nil {
		ch <- winAck{win: win, errStr: errStr}
	}
}

// deliver enqueues a proxied origin input event; a full inbox drops
// the event (counted) rather than stalling the connection demux.
func (ui *RemoteUI) deliver(we wireEvent) {
	if err := ui.inbox.TrySend(we); err != nil {
		ui.dropped.Add(1)
	}
}

// DroppedEvents reports inbound proxied events dropped on overflow.
func (ui *RemoteUI) DroppedEvents() int64 { return ui.dropped.Load() }

// dispatchLoop delivers inbound events to listeners, containing
// listener panics so a buggy callback cannot kill the proxy.
func (ui *RemoteUI) dispatchLoop() {
	buf := make([]any, 0, 64)
	for {
		batch, err := ui.inbox.ReceiveBatch(buf[:0])
		if err != nil {
			return
		}
		for _, v := range batch {
			we := v.(wireEvent)
			ui.mu.Lock()
			w := ui.wins[we.Win]
			ui.mu.Unlock()
			if w == nil {
				continue
			}
			e := we.toEvent()
			for _, l := range w.listenersFor(we.Component) {
				ui.dispatchOne(l, e)
			}
		}
	}
}

// dispatchOne invokes one listener with panic containment.
func (ui *RemoteUI) dispatchOne(l RemoteListener, e events.Event) {
	defer func() {
		if r := recover(); r != nil {
			ui.panics.Add(1)
		}
	}()
	l(e)
}

// close tears the proxy down: pending OpenWindow calls fail, the
// dispatch goroutine exits, and later operations error.
func (ui *RemoteUI) close() {
	ui.mu.Lock()
	if ui.closed {
		ui.mu.Unlock()
		return
	}
	ui.closed = true
	ui.mu.Unlock()
	close(ui.done)
	ui.inbox.Close()
}

// RemoteWindow is a remote application's handle on an origin mirror
// window.
type RemoteWindow struct {
	ui *RemoteUI
	id int64

	mu        sync.Mutex
	listeners map[string][]RemoteListener
}

// ID returns the origin display's window id.
func (w *RemoteWindow) ID() events.WindowID { return events.WindowID(w.id) }

// AddListener registers a callback for proxied origin input events on
// the named component. The first listener per component registers the
// origin-side forwarder (one opListen control frame).
func (w *RemoteWindow) AddListener(component string, l RemoteListener) error {
	w.mu.Lock()
	first := len(w.listeners[component]) == 0
	w.listeners[component] = append(w.listeners[component], l)
	w.mu.Unlock()
	if !first {
		return nil
	}
	return w.ui.sess.wc.m.send(frame{Op: opListen, SID: w.ui.sess.id, Win: w.id, Str: component})
}

// listenersFor snapshots the component's listeners.
func (w *RemoteWindow) listenersFor(component string) []RemoteListener {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.listeners[component]
}

// Post sends one event toward the origin display, targeted at this
// window.
func (w *RemoteWindow) Post(e events.Event) error {
	return w.PostBatch([]events.Event{e})
}

// PostBatch sends a run of events toward the origin display in one
// frame; the dispatcher re-posts them through events.PostBatch, so a
// burst pays one wire frame and one origin queue round-trip.
func (w *RemoteWindow) PostBatch(evts []events.Event) error {
	if len(evts) == 0 {
		return nil
	}
	wire := make([]wireEvent, len(evts))
	for i, e := range evts {
		wire[i] = fromEvent(w.id, e)
	}
	return w.ui.sess.wc.m.send(frame{Op: opPost, SID: w.ui.sess.id, Evts: wire})
}
