package playground_test

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"mpj/internal/playground"
)

// TestWorkerKillMidSession kills a worker with sessions in flight and
// queued, and asserts the contract: in-flight sessions fail promptly
// with ErrWorkerLost (no hang), queued sessions reschedule onto the
// survivor, and the conservation laws hold exactly at quiescence.
func TestWorkerKillMidSession(t *testing.T) {
	const n = 12
	_, mgr, addrs := newPlayground(t, 2, playground.Config{Capacity: 4, QueueCap: 16})
	var pipes []*io.PipeWriter
	sessions := make([]*playground.Session, 0, n)
	for i := 0; i < n; i++ {
		r, w := io.Pipe()
		pipes = append(pipes, w)
		s, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: fmt.Sprintf("u%d", i), Stdin: r})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}

	victim := addrs[0]
	if err := mgr.KillWorker(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	for _, w := range pipes {
		_ = w.Close()
	}

	var completed, lost int
	for i, s := range sessions {
		code, err := wait(t, s) // fails the test on hang
		switch {
		case err == nil && code == 0:
			completed++
		case errors.Is(err, playground.ErrWorkerLost):
			lost++
		case errors.Is(err, playground.ErrRejected):
			// acceptable only if the survivor was truly full
			t.Logf("session %d rejected on failover", i)
		default:
			t.Errorf("session %d: unexpected outcome code=%d err=%v", i, code, err)
		}
	}
	if lost == 0 {
		t.Errorf("killed a worker with in-flight sessions but none failed with ErrWorkerLost")
	}
	if completed == 0 {
		t.Errorf("no session survived on the remaining worker")
	}
	st := mgr.Stats()
	if st.Rescheduled == 0 {
		t.Errorf("killed worker had queued sessions but none were rescheduled: %+v", st)
	}
	checkConservation(t, st)
	if st.Submitted != n {
		t.Errorf("submitted %d, want %d", st.Submitted, n)
	}
}

// TestChurnUnderWorkerLoss hammers the pool from concurrent
// submitters while a worker dies and a replacement joins mid-run —
// the -race soak. Every session must reach a terminal state and the
// counters must balance exactly.
func TestChurnUnderWorkerLoss(t *testing.T) {
	const (
		submitters = 8
		perWorker  = 12
	)
	_, mgr, addrs := newPlayground(t, 3, playground.Config{Capacity: 4, QueueCap: 8})

	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	record := func(k string) {
		mu.Lock()
		outcomes[k]++
		mu.Unlock()
	}
	start := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				s, err := mgr.Submit(playground.SessionSpec{
					Program: "pg-echo",
					Args:    []string{"x"},
					User:    fmt.Sprintf("churn-u%d-%d", g, i%3),
					Stdin:   strings.NewReader("y\n"),
				})
				if err != nil {
					record("rejected-at-submit")
					continue
				}
				select {
				case <-s.Done():
				case <-time.After(waitTimeout):
					t.Errorf("submitter %d session %d hung", g, i)
					return
				}
				if _, err := s.Wait(); err != nil {
					record("failed")
				} else {
					record("completed")
				}
			}
		}(g)
	}
	close(start)
	// Kill one worker while traffic flows, then add a replacement.
	time.Sleep(30 * time.Millisecond)
	if err := mgr.KillWorker(addrs[0]); err != nil {
		t.Fatalf("kill: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	if _, err := mgr.AddLocalWorker("pgw-replacement"); err != nil {
		t.Fatalf("add replacement: %v", err)
	}
	wg.Wait()

	st := mgr.Stats()
	checkConservation(t, st)
	if st.Submitted != submitters*perWorker {
		t.Errorf("submitted %d, want %d", st.Submitted, submitters*perWorker)
	}
	if outcomes["completed"] == 0 {
		t.Errorf("nothing completed under churn: %v (stats %+v)", outcomes, st)
	}
	t.Logf("churn outcomes: %v, stats %+v", outcomes, st)
}

// TestHeartbeatDetectsUnresponsiveWorker joins a worker that accepts
// the connection but never answers, and asserts the heartbeat fails
// it — and its session — within the miss budget.
func TestHeartbeatDetectsUnresponsiveWorker(t *testing.T) {
	origin := newOrigin(t)
	pool := playground.NewPool(origin, playground.Config{Heartbeat: 20 * time.Millisecond, HeartbeatMiss: 3})
	t.Cleanup(pool.Close)

	const host = "deadbeat"
	origin.Net().AddHost(host)
	l, err := origin.Net().Listen(host, playground.DefaultPort)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			// Swallow frames, answer nothing: a hung worker.
			go func() { _, _ = io.Copy(io.Discard, c) }()
		}
	}()

	if err := pool.AddWorker(host, playground.DefaultPort); err != nil {
		t.Fatalf("add worker: %v", err)
	}
	s, err := pool.Submit(playground.SessionSpec{Program: "pg-hold", User: "a"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat never declared the unresponsive worker dead")
	}
	if _, err := s.Wait(); !errors.Is(err, playground.ErrWorkerLost) {
		t.Errorf("session error %v, want ErrWorkerLost", err)
	}
	if ws := pool.Workers(); len(ws) != 0 {
		t.Errorf("dead worker still listed: %v", ws)
	}
	checkConservation(t, pool.Stats())
}
