package playground_test

import (
	"fmt"
	"strings"
	"testing"

	"mpj/internal/audit"
	"mpj/internal/playground"
)

// TestAuditTrailUnderChurn drives session churn with a mid-run worker
// kill and asserts (a) the CatRemote trail records the lifecycle —
// joins, placements, closes, the failure and the reschedules — and
// (b) the hash chain still verifies end to end afterwards.
func TestAuditTrailUnderChurn(t *testing.T) {
	origin, mgr, addrs := newPlayground(t, 2, playground.Config{Capacity: 2, QueueCap: 16})

	var sessions []*playground.Session
	for i := 0; i < 10; i++ {
		s, err := mgr.Submit(playground.SessionSpec{
			Program: "pg-echo",
			Args:    []string{"a"},
			User:    fmt.Sprintf("u%d", i),
			Stdin:   strings.NewReader("b\n"),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	if err := mgr.KillWorker(addrs[1]); err != nil {
		t.Fatalf("kill: %v", err)
	}
	for _, s := range sessions {
		wait(t, s) // outcomes vary; only termination matters here
	}
	checkConservation(t, mgr.Stats())

	log := origin.Audit()
	log.Sync()
	recs, err := log.Query(audit.Query{Cats: audit.CatRemote})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	verbs := map[string]int{}
	for _, r := range recs {
		verbs[r.Verb]++
	}
	for _, want := range []string{"worker-join", "worker-leave", "place", "close"} {
		if verbs[want] == 0 {
			t.Errorf("no %q record in the remote trail: %v", want, verbs)
		}
	}
	if verbs["fail"]+verbs["reschedule"] == 0 {
		t.Errorf("worker kill left no fail/reschedule records: %v", verbs)
	}

	res, err := log.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !res.OK {
		t.Errorf("audit chain broken under playground churn: %s line %d: %s",
			res.BrokenSegment, res.BrokenLine, res.Reason)
	}
	if res.Records == 0 {
		t.Errorf("verify saw no records")
	}
}
