// Package playground implements the remote playground: a dispatcher
// fronting a pool of worker VMs that execute sessions on behalf of an
// origin VM.
//
// The paper's playground model keeps untrusted code off the machine
// the user sits at: programs are shipped to sacrificial worker
// machines and only their I/O and UI traffic crosses back. This
// package reproduces that shape over netsim. The dispatcher (Pool)
// keeps ONE dialed connection per worker and multiplexes every
// session over it — framed stdin/stdout/stderr plus a control channel
// (open, exit, cancel, window management, event proxy, heartbeat).
// Placement is sticky-per-user first, least-loaded second, with a
// bounded per-worker queue of not-yet-opened sessions behind a
// per-worker in-flight capacity.
//
// UI proxying: a remote session application gets a RemoteUI resource
// instead of a real display. Windows it opens materialize on the
// ORIGIN display (owned by the origin application that submitted the
// session), origin input events on components the remote listens on
// are forwarded out, and events the remote posts come back through
// events.PostBatch — so a remote applet's window is indistinguishable
// from a local one at the origin.
//
// Failure: a missed-heartbeat budget or a connection error marks the
// worker dead. In-flight sessions on it fail promptly with
// ErrWorkerLost (their mirror windows close); queued sessions are
// rescheduled onto survivors or rejected if none have room. The
// counters obey two conservation laws the tests assert under churn:
//
//	Submitted == Placed + Rejected        (every session ends somewhere)
//	Placed    == Completed + Failed + in-flight
package playground

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mpj/internal/audit"
	"mpj/internal/core"
	"mpj/internal/events"
	"mpj/internal/vm"
)

// Pool-level errors.
var (
	// ErrPoolClosed is returned by Submit after Close.
	ErrPoolClosed = errors.New("playground: pool closed")
	// ErrNoWorker means no live worker had room (or the pool is
	// empty); the session was rejected, never placed.
	ErrNoWorker = errors.New("playground: no worker available")
	// ErrWorkerLost means the session's worker died with the session
	// in flight.
	ErrWorkerLost = errors.New("playground: worker lost")
	// ErrRejected means a queued session lost its worker and no
	// survivor had room for it.
	ErrRejected = errors.New("playground: session rejected")
)

// Config tunes the dispatcher.
type Config struct {
	// Capacity is the per-worker in-flight session limit. Default 8.
	Capacity int
	// QueueCap bounds each worker's queue of accepted-but-not-opened
	// sessions. Default 16.
	QueueCap int
	// Heartbeat is the liveness probe interval. Default 250ms.
	Heartbeat time.Duration
	// HeartbeatMiss is how many consecutive unanswered probes mark a
	// worker dead. Default 4.
	HeartbeatMiss int
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 4
	}
}

// Stats is a snapshot of the pool's conservation counters.
type Stats struct {
	Submitted   int64
	Placed      int64
	Rejected    int64
	Completed   int64
	Failed      int64
	Rescheduled int64
}

// InFlight derives the live-session count from the conservation law.
func (s Stats) InFlight() int64 { return s.Placed - s.Completed - s.Failed }

// WorkerState is a pool worker's lifecycle state.
type WorkerState int

const (
	// WorkerActive workers accept placements.
	WorkerActive WorkerState = iota + 1
	// WorkerDraining workers finish what they have but take no new
	// sessions.
	WorkerDraining
	// WorkerDead workers have been failed out of the pool.
	WorkerDead
)

func (s WorkerState) String() string {
	switch s {
	case WorkerActive:
		return "active"
	case WorkerDraining:
		return "draining"
	case WorkerDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// WorkerInfo describes one pool worker for introspection (the shell's
// playground builtin renders these).
type WorkerInfo struct {
	Addr   string
	State  WorkerState
	Active int
	Queued int
}

// SessionSpec describes one remote execution request.
type SessionSpec struct {
	// Program and Args name the program to run on the worker.
	Program string
	Args    []string
	// User is the submitting origin user — the sticky-placement key,
	// and (with Password) the worker-side account when Password is
	// non-empty. With an empty Password the session runs as the
	// worker's sandbox account.
	User     string
	Password string
	// Stdin, if non-nil, is pumped to the remote session; Stdout and
	// Stderr receive its output (nil discards).
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
	// Owner, if non-nil, is the origin application that owns the
	// session's mirror windows. Sessions without an owner refuse
	// remote OpenWindow calls but run fine otherwise.
	Owner *core.Application
}

// sessState is a session's dispatcher-side lifecycle state.
type sessState int

const (
	sessQueued sessState = iota + 1
	sessPlaced
	sessDone
)

// Session is the origin-side handle on a remote execution.
type Session struct {
	pool *Pool
	id   uint64
	spec SessionSpec
	done chan struct{}

	// state and worker are guarded by pool.mu (placement state);
	// the session's own mu guards the terminal fields and windows.
	state  sessState
	worker *poolWorker

	mu       sync.Mutex
	wins     map[int64]*events.Window
	forward  map[string]bool // "win/component" forwarder registered
	pumping  bool            // stdin pump started (on opStdinReq)
	finished bool
	code     int
	err      error
}

// ID returns the session's pool-unique id.
func (s *Session) ID() uint64 { return s.id }

// Done closes when the session reaches a terminal state.
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session finishes and returns its remote exit
// code and terminal error (nil for a normal remote exit, whatever the
// remote code was).
func (s *Session) Wait() (int, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.code, s.err
}

// Worker reports the address of the worker the session was assigned
// to, or "" before placement.
func (s *Session) Worker() string {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	if s.worker == nil {
		return ""
	}
	return s.worker.key
}

// Cancel asks for the session's termination: a queued session is
// rejected immediately, a placed one gets an opCancel (the worker
// still answers with a normal exit).
func (s *Session) Cancel() {
	p := s.pool
	p.mu.Lock()
	var w *poolWorker
	switch s.state {
	case sessQueued:
		if s.worker != nil {
			s.worker.unqueueLocked(s)
		}
		s.state = sessDone
		p.mu.Unlock()
		p.rejected.Add(1)
		p.emit("reject", s.spec.User, fmt.Sprintf("sid=%d canceled while queued", s.id))
		s.finish(ExitCanceled, ErrRejected)
		return
	case sessPlaced:
		w = s.worker
	}
	p.mu.Unlock()
	if w != nil {
		_ = w.m.send(frame{Op: opCancel, SID: s.id})
	}
}

// finish moves the session to its terminal state (idempotent) and
// closes its mirror windows.
func (s *Session) finish(code int, err error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.code = code
	s.err = err
	wins := s.wins
	s.wins = nil
	s.mu.Unlock()
	for _, w := range wins {
		w.Close()
	}
	close(s.done)
}

// poolWorker is the dispatcher's record of one worker: one mux'd
// connection, the in-flight set, and the assigned-but-not-opened
// queue.
type poolWorker struct {
	pool  *Pool
	key   string // "host:port"
	host  string
	port  int
	m     *mux
	state WorkerState

	active map[uint64]*Session // guarded by pool.mu
	queue  []*Session          // guarded by pool.mu

	// outstanding counts unanswered heartbeat probes.
	outstanding atomic.Int32
}

// loadLocked is the placement metric. Caller holds pool.mu.
func (w *poolWorker) loadLocked() int { return len(w.active) + len(w.queue) }

// roomLocked reports whether the worker can take one more session.
// Caller holds pool.mu.
func (w *poolWorker) roomLocked(cfg Config) bool {
	return w.state == WorkerActive && w.loadLocked() < cfg.Capacity+cfg.QueueCap
}

// unqueueLocked removes a session from the queue. Caller holds
// pool.mu.
func (w *poolWorker) unqueueLocked(s *Session) {
	for i, q := range w.queue {
		if q == s {
			w.queue = append(w.queue[:i], w.queue[i+1:]...)
			return
		}
	}
}

// Pool is the dispatcher: it owns the worker set, places sessions,
// proxies UI traffic, and converts worker failures into clean session
// outcomes.
type Pool struct {
	origin *core.Platform
	cfg    Config

	mu      sync.Mutex
	workers map[string]*poolWorker
	sticky  map[string]*poolWorker // user -> preferred worker
	nextSID uint64
	closed  bool

	hbStop chan struct{}
	hbDone chan struct{}

	submitted   atomic.Int64
	placed      atomic.Int64
	rejected    atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	rescheduled atomic.Int64
}

// NewPool builds a dispatcher on the origin platform (whose network
// it dials workers over, whose display hosts mirror windows, and
// whose audit log receives CatRemote events) and starts its heartbeat
// prober.
func NewPool(origin *core.Platform, cfg Config) *Pool {
	cfg.fill()
	p := &Pool{
		origin:  origin,
		cfg:     cfg,
		workers: make(map[string]*poolWorker),
		sticky:  make(map[string]*poolWorker),
		hbStop:  make(chan struct{}),
		hbDone:  make(chan struct{}),
	}
	go p.heartbeatLoop()
	return p
}

// Stats snapshots the conservation counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted:   p.submitted.Load(),
		Placed:      p.placed.Load(),
		Rejected:    p.rejected.Load(),
		Completed:   p.completed.Load(),
		Failed:      p.failed.Load(),
		Rescheduled: p.rescheduled.Load(),
	}
}

// Workers lists the pool's workers, sorted by address.
func (p *Pool) Workers() []WorkerInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, w := range p.workers {
		out = append(out, WorkerInfo{Addr: w.key, State: w.state, Active: len(w.active), Queued: len(w.queue)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// AddWorker dials host:port from the origin VM and joins the worker
// to the pool: the single connection every session to that worker
// multiplexes over.
func (p *Pool) AddWorker(host string, port int) error {
	key := fmt.Sprintf("%s:%d", host, port)
	conn, err := p.origin.Net().Dial(p.origin.HostName(), host, port)
	if err != nil {
		return fmt.Errorf("playground: add worker %s: %w", key, err)
	}
	w := &poolWorker{
		pool:   p,
		key:    key,
		host:   host,
		port:   port,
		m:      newMux(conn),
		state:  WorkerActive,
		active: make(map[uint64]*Session),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = conn.Close()
		return ErrPoolClosed
	}
	if _, dup := p.workers[key]; dup {
		p.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("playground: worker %s already in pool", key)
	}
	p.workers[key] = w
	p.mu.Unlock()
	go p.readLoop(w)
	p.emit("worker-join", "", key)
	return nil
}

// Drain stops new placements on a worker; its in-flight and queued
// sessions proceed.
func (p *Pool) Drain(addr string) error {
	p.mu.Lock()
	w := p.workers[addr]
	if w == nil || w.state == WorkerDead {
		p.mu.Unlock()
		return fmt.Errorf("playground: no live worker %s", addr)
	}
	w.state = WorkerDraining
	for u, sw := range p.sticky {
		if sw == w {
			delete(p.sticky, u)
		}
	}
	p.mu.Unlock()
	p.emit("worker-drain", "", addr)
	return nil
}

// Remove fails a worker out of the pool immediately, as if it had
// crashed: in-flight sessions fail, queued ones reschedule.
func (p *Pool) Remove(addr string) error {
	p.mu.Lock()
	w := p.workers[addr]
	p.mu.Unlock()
	if w == nil {
		return fmt.Errorf("playground: no worker %s", addr)
	}
	p.workerDead(w, "removed")
	return nil
}

// Close shuts the dispatcher down: every worker is failed out (so
// in-flight sessions fail, queued ones reject — nothing hangs) and
// Submit refuses new work.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	workers := make([]*poolWorker, 0, len(p.workers))
	for _, w := range p.workers {
		workers = append(workers, w)
	}
	p.mu.Unlock()
	close(p.hbStop)
	<-p.hbDone
	for _, w := range workers {
		p.workerDead(w, "pool closed")
	}
}

// Submit places a session (sticky-per-user first, least-loaded
// second). With no live worker with room it returns ErrNoWorker and
// the session counts as Rejected; otherwise the session is opened
// immediately if its worker has an in-flight slot free, or queued on
// it.
func (p *Pool) Submit(spec SessionSpec) (*Session, error) {
	p.submitted.Add(1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejected.Add(1)
		return nil, ErrPoolClosed
	}
	w := p.pickLocked(spec.User)
	if w == nil {
		p.mu.Unlock()
		p.rejected.Add(1)
		p.emit("reject", spec.User, "no worker available")
		return nil, ErrNoWorker
	}
	p.nextSID++
	s := &Session{
		pool: p,
		id:   p.nextSID,
		spec: spec,
		done: make(chan struct{}),
		wins: make(map[int64]*events.Window),
	}
	if spec.User != "" {
		p.sticky[spec.User] = w
	}
	s.worker = w
	var open bool
	var depth int
	if len(w.active) < p.cfg.Capacity {
		s.state = sessPlaced
		w.active[s.id] = s
		p.placed.Add(1)
		open = true
	} else {
		s.state = sessQueued
		w.queue = append(w.queue, s)
		depth = len(w.queue)
	}
	p.mu.Unlock()
	if open {
		p.openSession(w, s)
	} else {
		p.emit("queue", spec.User, fmt.Sprintf("sid=%d worker=%s depth=%d", s.id, w.key, depth))
	}
	return s, nil
}

// pickLocked chooses a worker for a user: their sticky worker if it
// still has room, else the least-loaded active worker with room.
// Caller holds pool.mu.
func (p *Pool) pickLocked(user string) *poolWorker {
	if user != "" {
		if w := p.sticky[user]; w != nil && w.roomLocked(p.cfg) {
			return w
		}
		delete(p.sticky, user)
	}
	var best *poolWorker
	for _, w := range p.workers {
		if !w.roomLocked(p.cfg) {
			continue
		}
		// Tie-break on address so placement is deterministic.
		if best == nil || w.loadLocked() < best.loadLocked() ||
			(w.loadLocked() == best.loadLocked() && w.key < best.key) {
			best = w
		}
	}
	return best
}

// openSession sends the opOpen frame and starts the stdin pump.
// Never called with pool.mu held — a dead connection would otherwise
// deadlock against the reader's workerDead.
func (p *Pool) openSession(w *poolWorker, s *Session) {
	req := &openReq{
		Program:  s.spec.Program,
		Args:     s.spec.Args,
		User:     s.spec.User,
		Password: s.spec.Password,
		HasStdin: s.spec.Stdin != nil,
	}
	p.emit("place", s.spec.User, fmt.Sprintf("sid=%d worker=%s program=%s", s.id, w.key, s.spec.Program))
	if err := w.m.send(frame{Op: opOpen, SID: s.id, Open: req}); err != nil {
		// The reader (or heartbeat) will fail the worker and this
		// session with it; nothing to do here.
		return
	}
	// Stdin is NOT pumped yet: the worker asks with opStdinReq when
	// (and only when) the session application first reads it. With a
	// shared interactive stdin — the shell passing its own terminal to
	// `rexec pool` — an eager pump would compete with the terminal's
	// reader and steal the user's next input lines.
}

// pumpStdin copies the session's stdin to the worker in opStdin
// frames, then signals EOF. Started by the first opStdinReq; stops as
// soon as the session reaches a terminal state so a shared stdin is
// released (bounded by the one Read already in flight).
func (p *Pool) pumpStdin(w *poolWorker, s *Session) {
	buf := make([]byte, 4096)
	for {
		n, err := s.spec.Stdin.Read(buf)
		s.mu.Lock()
		fin := s.finished
		s.mu.Unlock()
		if fin {
			return
		}
		if n > 0 {
			data := make([]byte, n)
			copy(data, buf[:n])
			if w.m.send(frame{Op: opStdin, SID: s.id, Data: data}) != nil {
				return
			}
		}
		if err != nil {
			_ = w.m.send(frame{Op: opStdinEOF, SID: s.id})
			return
		}
	}
}

// readLoop demultiplexes one worker connection until it dies.
func (p *Pool) readLoop(w *poolWorker) {
	for {
		f, err := w.m.recv()
		if err != nil {
			p.workerDead(w, fmt.Sprintf("connection: %v", err))
			return
		}
		p.handle(w, f)
	}
}

// session resolves an in-flight session id on a worker.
func (p *Pool) session(w *poolWorker, sid uint64) *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return w.active[sid]
}

// handle dispatches one frame from a worker.
func (p *Pool) handle(w *poolWorker, f frame) {
	switch f.Op {
	case opStdout:
		if s := p.session(w, f.SID); s != nil && s.spec.Stdout != nil {
			_, _ = s.spec.Stdout.Write(f.Data)
		}
	case opStderr:
		if s := p.session(w, f.SID); s != nil && s.spec.Stderr != nil {
			_, _ = s.spec.Stderr.Write(f.Data)
		}
	case opStdinReq:
		if s := p.session(w, f.SID); s != nil {
			if s.spec.Stdin == nil {
				_ = w.m.send(frame{Op: opStdinEOF, SID: s.id})
				return
			}
			s.mu.Lock()
			start := !s.pumping && !s.finished
			s.pumping = true
			s.mu.Unlock()
			if start {
				go p.pumpStdin(w, s)
			}
		}
	case opExit, opOpenErr:
		p.mu.Lock()
		s := w.active[f.SID]
		delete(w.active, f.SID)
		opens := p.promoteLocked(w)
		p.mu.Unlock()
		if s != nil {
			if f.Op == opExit {
				p.completed.Add(1)
				p.emit("close", s.spec.User, fmt.Sprintf("sid=%d worker=%s code=%d", s.id, w.key, f.Code))
				s.finish(f.Code, nil)
			} else {
				p.failed.Add(1)
				p.emit("fail", s.spec.User, fmt.Sprintf("sid=%d worker=%s open refused: %s", s.id, w.key, f.Str))
				s.finish(f.Code, fmt.Errorf("playground: open refused: %s", f.Str))
			}
		}
		for _, ns := range opens {
			p.openSession(w, ns)
		}
	case opWinOpen:
		p.handleWinOpen(w, f)
	case opListen:
		p.handleListen(w, f)
	case opPost:
		p.handlePost(w, f)
	case opPong:
		w.outstanding.Store(0)
	}
}

// promoteLocked moves queued sessions into freed in-flight slots.
// Caller holds pool.mu; returned sessions must be opened after the
// lock drops.
func (p *Pool) promoteLocked(w *poolWorker) []*Session {
	var opens []*Session
	for len(w.queue) > 0 && len(w.active) < p.cfg.Capacity && w.state != WorkerDead {
		s := w.queue[0]
		w.queue = w.queue[1:]
		s.state = sessPlaced
		w.active[s.id] = s
		p.placed.Add(1)
		opens = append(opens, s)
	}
	return opens
}

// handleWinOpen opens a mirror window on the origin display for a
// remote session and acks with the origin window id.
func (p *Pool) handleWinOpen(w *poolWorker, f frame) {
	s := p.session(w, f.SID)
	if s == nil {
		return
	}
	refuse := func(reason string) {
		_ = w.m.send(frame{Op: opWinOpened, SID: f.SID, Seq: f.Seq, Win: 0, Str: reason})
	}
	display := p.origin.Display()
	if display == nil || s.spec.Owner == nil {
		refuse(ErrNoUI.Error())
		return
	}
	if display.Mode() != events.PerAppDispatcher {
		// SingleDispatcher's lazy start needs an opening VM thread,
		// which the proxy doesn't have — and its shared queue is the
		// architecture the playground exists to avoid.
		refuse("playground: origin display must use PerAppDispatcher")
		return
	}
	owner := events.OwnerID(s.spec.Owner.ID())
	win, err := display.OpenWindow(nil, owner, f.Str)
	if err != nil {
		refuse(err.Error())
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		win.Close()
		refuse(ErrUIClosed.Error())
		return
	}
	s.wins[int64(win.ID())] = win
	s.mu.Unlock()
	_ = w.m.send(frame{Op: opWinOpened, SID: f.SID, Seq: f.Seq, Win: int64(win.ID())})
}

// handleListen registers the origin-side forwarder that streams input
// events on one window component back to the remote application. The
// forwarder exists only for components the remote listens on, so
// events the remote itself posts (on other components) do not echo
// back and loop.
func (p *Pool) handleListen(w *poolWorker, f frame) {
	s := p.session(w, f.SID)
	if s == nil {
		return
	}
	key := fmt.Sprintf("%d/%s", f.Win, f.Str)
	s.mu.Lock()
	win := s.wins[f.Win]
	if win == nil || s.forward[key] {
		s.mu.Unlock()
		return
	}
	if s.forward == nil {
		s.forward = make(map[string]bool)
	}
	s.forward[key] = true
	s.mu.Unlock()
	sid, origin := f.SID, f.Win
	_ = win.AddListener(f.Str, func(t *vm.Thread, e events.Event) {
		_ = w.m.send(frame{Op: opEvent, SID: sid, Evts: []wireEvent{fromEvent(origin, e)}})
	})
}

// handlePost re-posts a remote application's event batch onto the
// origin display.
func (p *Pool) handlePost(w *poolWorker, f frame) {
	if p.session(w, f.SID) == nil {
		return
	}
	display := p.origin.Display()
	if display == nil || len(f.Evts) == 0 {
		return
	}
	evts := make([]events.Event, len(f.Evts))
	for i, we := range f.Evts {
		evts[i] = we.toEvent()
	}
	_ = display.PostBatch(evts)
}

// heartbeatLoop probes every live worker each interval; a worker that
// leaves HeartbeatMiss probes unanswered is declared dead.
func (p *Pool) heartbeatLoop() {
	defer close(p.hbDone)
	ticker := time.NewTicker(p.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-p.hbStop:
			return
		case <-ticker.C:
		}
		p.mu.Lock()
		workers := make([]*poolWorker, 0, len(p.workers))
		for _, w := range p.workers {
			if w.state != WorkerDead {
				workers = append(workers, w)
			}
		}
		p.mu.Unlock()
		for _, w := range workers {
			if int(w.outstanding.Add(1)) > p.cfg.HeartbeatMiss {
				p.workerDead(w, "heartbeat timeout")
				continue
			}
			if err := w.m.send(frame{Op: opPing}); err != nil {
				p.workerDead(w, fmt.Sprintf("heartbeat: %v", err))
			}
		}
	}
}

// workerDead converts a worker failure into clean session outcomes:
// in-flight sessions fail with ErrWorkerLost, queued sessions move to
// surviving workers (or reject when none have room). Idempotent —
// the heartbeat, the reader, and Remove can all report the same
// death.
func (p *Pool) workerDead(w *poolWorker, reason string) {
	p.mu.Lock()
	if w.state == WorkerDead {
		p.mu.Unlock()
		return
	}
	w.state = WorkerDead
	delete(p.workers, w.key)
	for u, sw := range p.sticky {
		if sw == w {
			delete(p.sticky, u)
		}
	}
	inflight := make([]*Session, 0, len(w.active))
	for _, s := range w.active {
		inflight = append(inflight, s)
	}
	w.active = make(map[uint64]*Session)
	queued := w.queue
	w.queue = nil

	// Reassign the queue under the same lock so concurrent deaths
	// cannot double-place a session.
	type placement struct {
		s *Session
		w *poolWorker
	}
	var opens []placement
	var rejects []*Session
	for _, s := range queued {
		nw := p.pickLocked(s.spec.User)
		if nw == nil {
			s.state = sessDone
			rejects = append(rejects, s)
			continue
		}
		p.rescheduled.Add(1)
		s.worker = nw
		if s.spec.User != "" {
			p.sticky[s.spec.User] = nw
		}
		if len(nw.active) < p.cfg.Capacity {
			s.state = sessPlaced
			nw.active[s.id] = s
			p.placed.Add(1)
			opens = append(opens, placement{s, nw})
		} else {
			nw.queue = append(nw.queue, s)
		}
	}
	p.mu.Unlock()

	w.m.close()
	p.emit("worker-leave", "", fmt.Sprintf("%s: %s", w.key, reason))
	for _, s := range inflight {
		p.failed.Add(1)
		p.emit("fail", s.spec.User, fmt.Sprintf("sid=%d worker=%s: %s", s.id, w.key, reason))
		s.finish(ExitWorkerLost, ErrWorkerLost)
	}
	for _, s := range rejects {
		p.rejected.Add(1)
		p.emit("reject", s.spec.User, fmt.Sprintf("sid=%d no survivor after %s died", s.id, w.key))
		s.finish(ExitWorkerLost, ErrRejected)
	}
	for _, pl := range opens {
		p.emit("reschedule", pl.s.spec.User, fmt.Sprintf("sid=%d %s -> %s", pl.s.id, w.key, pl.w.key))
		p.openSession(pl.w, pl.s)
	}
}

// emit records a CatRemote audit event on the origin log.
func (p *Pool) emit(verb, user, detail string) {
	if log := p.origin.Audit(); log != nil {
		log.Emit(audit.Event{Cat: audit.CatRemote, Verb: verb, User: user, Detail: detail})
	}
}
