package playground

import (
	"encoding/gob"
	"io"
	"sync"

	"mpj/internal/events"
	"mpj/internal/netsim"
)

// DefaultPort is the conventional playground worker port.
const DefaultPort = 520

// op tags a multiplexed protocol frame. One netsim connection per
// worker carries every session's control channel and framed
// stdin/stdout/stderr streams, plus the bidirectional event proxy.
type op int

const (
	// opOpen (dispatcher → worker) opens a session: frame.SID names
	// the new session, frame.Open carries the request.
	opOpen op = iota + 1
	// opOpenErr (worker → dispatcher) refuses a session at open time:
	// frame.Str carries the reason, frame.Code the exit code.
	opOpenErr
	// opStdin / opStdinEOF (dispatcher → worker) carry the session's
	// standard input.
	opStdin
	opStdinEOF
	// opStdinReq (worker → dispatcher) reports the session
	// application's FIRST read of its standard input; only then does
	// the dispatcher start pumping opStdin frames. Demand-driven
	// pumping keeps the origin's stdin untouched for programs that
	// never read it — with a shared interactive stdin (the mvmsh
	// terminal), an eager pump would steal the shell's own input.
	opStdinReq
	// opStdout / opStderr (worker → dispatcher) carry the session
	// application's output.
	opStdout
	opStderr
	// opExit (worker → dispatcher) reports session completion:
	// frame.Code is the remote exit code.
	opExit
	// opCancel (dispatcher → worker) asks the worker to terminate the
	// session; the worker still answers with opExit.
	opCancel
	// opWinOpen (worker → dispatcher) asks the origin VM to open a
	// mirror window: frame.Seq correlates the opWinOpened reply,
	// frame.Str is the title.
	opWinOpen
	// opWinOpened (dispatcher → worker) answers opWinOpen: frame.Win
	// is the origin window id (0 on failure, frame.Str the reason).
	opWinOpened
	// opListen (worker → dispatcher) registers the remote application
	// as a listener on component frame.Str of origin window frame.Win;
	// matching origin input events start flowing back as opEvent.
	opListen
	// opEvent (dispatcher → worker) forwards origin input events to
	// the remote application's listeners.
	opEvent
	// opPost (worker → dispatcher) carries a batch of events the
	// remote application emits toward the origin display; the
	// dispatcher re-posts them through events.PostBatch.
	opPost
	// opPing / opPong are the liveness heartbeat.
	opPing
	opPong
)

// openReq is the opOpen payload.
type openReq struct {
	// Program names the program to run on the worker platform.
	Program string
	// Args are its arguments.
	Args []string
	// User and Password authenticate a worker-side account when
	// Password is non-empty. Otherwise the session runs as the
	// worker's sacrificial sandbox account — the playground model:
	// untrusted code executes under a throwaway identity, whichever
	// origin user asked for it.
	User     string
	Password string
	// HasStdin tells the worker to expect opStdin frames (an
	// opStdinEOF arrives either way).
	HasStdin bool
}

// wireEvent is an input event crossing the proxy in either direction.
// Win is always the ORIGIN window id: mirror windows exist only on the
// origin display, and the worker keys its remote window handles by the
// origin id the opWinOpened reply carried.
type wireEvent struct {
	Win       int64
	Component string
	Kind      int
	X, Y      int
	Key       rune
}

// toEvent converts a wire event into a display event.
func (we wireEvent) toEvent() events.Event {
	return events.Event{
		Window:    events.WindowID(we.Win),
		Component: we.Component,
		Kind:      events.Kind(we.Kind),
		X:         we.X,
		Y:         we.Y,
		Key:       we.Key,
	}
}

// fromEvent converts a display event for the wire, stamping the given
// origin window id.
func fromEvent(win int64, e events.Event) wireEvent {
	return wireEvent{
		Win:       win,
		Component: e.Component,
		Kind:      int(e.Kind),
		X:         e.X,
		Y:         e.Y,
		Key:       e.Key,
	}
}

// frame is one multiplexed protocol message (gob-encoded).
type frame struct {
	Op   op
	SID  uint64
	Seq  uint64
	Win  int64
	Str  string
	Code int
	Data []byte
	Open *openReq
	Evts []wireEvent
}

// mux wraps one connection with a locked encoder (many sessions and
// the heartbeat interleave frames) and a single-reader decoder.
type mux struct {
	conn *netsim.Conn
	dec  *gob.Decoder

	mu  sync.Mutex
	enc *gob.Encoder
}

func newMux(conn *netsim.Conn) *mux {
	return &mux{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
}

// send encodes one frame under the write lock.
func (m *mux) send(f frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enc.Encode(f)
}

// recv decodes the next frame; single-goroutine use only.
func (m *mux) recv() (frame, error) {
	var f frame
	err := m.dec.Decode(&f)
	return f, err
}

// close tears the connection down; blocked recv returns an error.
func (m *mux) close() { _ = m.conn.Close() }

// frameWriter adapts the mux into an io.Writer emitting stream frames
// of one kind for one session.
type frameWriter struct {
	m    *mux
	op   op
	sid  uint64
}

var _ io.Writer = (*frameWriter)(nil)

func (w *frameWriter) Write(p []byte) (int, error) {
	data := make([]byte, len(p))
	copy(data, p)
	if err := w.m.send(frame{Op: w.op, SID: w.sid, Data: data}); err != nil {
		return 0, err
	}
	return len(p), nil
}
