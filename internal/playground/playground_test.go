package playground_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpj/internal/core"
	"mpj/internal/events"
	"mpj/internal/playground"
	"mpj/internal/vm"
)

// waitTimeout bounds every blocking wait so a regression hangs the
// test, not the suite.
const waitTimeout = 30 * time.Second

// newOrigin boots an origin platform with a per-app-dispatcher
// display (the mode the UI proxy requires).
func newOrigin(t *testing.T) *core.Platform {
	t.Helper()
	p, err := core.NewPlatform(core.Config{Name: "origin"})
	if err != nil {
		t.Fatalf("boot origin: %v", err)
	}
	t.Cleanup(p.Shutdown)
	p.EnableDisplay(events.PerAppDispatcher)
	return p
}

// installTestPrograms is the worker-platform install hook: the
// programs remote sessions run in these tests.
func installTestPrograms(p *core.Platform) error {
	// pg-echo prints its args, copies stdin to stdout, exits 0.
	if err := p.RegisterProgram(core.Program{Name: "pg-echo", Main: func(ctx *core.Context, args []string) int {
		if len(args) > 0 {
			ctx.Printf("%s\n", strings.Join(args, " "))
		}
		_, _ = io.Copy(ctx.Stdout(), ctx.Stdin())
		return 0
	}}); err != nil {
		return err
	}
	// pg-hold runs until its stdin reaches EOF — the in-flight body
	// for queueing and worker-loss tests.
	if err := p.RegisterProgram(core.Program{Name: "pg-hold", Main: func(ctx *core.Context, args []string) int {
		_, _ = io.Copy(io.Discard, ctx.Stdin())
		return 0
	}}); err != nil {
		return err
	}
	// pg-user prints the account the session runs as.
	if err := p.RegisterProgram(core.Program{Name: "pg-user", Main: func(ctx *core.Context, args []string) int {
		ctx.Printf("%s\n", ctx.User().Name)
		return 0
	}}); err != nil {
		return err
	}
	// pg-ui opens a mirror window, answers every "in" event with an
	// "out" event carrying X+1, then holds until stdin EOF.
	return p.RegisterProgram(core.Program{Name: "pg-ui", Main: func(ctx *core.Context, args []string) int {
		ui, ok := playground.UIOf(ctx)
		if !ok {
			return 3
		}
		w, err := ui.OpenWindow("remote-ui")
		if err != nil {
			return 4
		}
		if err := w.AddListener("in", func(e events.Event) {
			_ = w.Post(events.Event{Component: "out", Kind: events.KindAction, X: e.X + 1})
		}); err != nil {
			return 5
		}
		ctx.Printf("ready\n")
		_, _ = io.Copy(io.Discard, ctx.Stdin())
		return 0
	}})
}

// newPlayground builds a manager with n local workers on a fresh
// origin.
func newPlayground(t *testing.T, n int, cfg playground.Config) (*core.Platform, *playground.Manager, []string) {
	t.Helper()
	origin := newOrigin(t)
	mgr := playground.NewManager(origin, cfg, installTestPrograms)
	t.Cleanup(mgr.Close)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addr, err := mgr.AddLocalWorker("")
		if err != nil {
			t.Fatalf("add worker %d: %v", i, err)
		}
		addrs = append(addrs, addr)
	}
	return origin, mgr, addrs
}

// hostApp launches a long-lived origin application to own mirror
// windows.
func hostApp(t *testing.T, p *core.Platform) *core.Application {
	t.Helper()
	if err := p.RegisterProgram(core.Program{Name: "pg-origin-host", Main: func(ctx *core.Context, args []string) int {
		<-ctx.Thread().StopChan()
		return 0
	}}); err != nil {
		t.Fatalf("register host: %v", err)
	}
	app, err := p.Exec(core.ExecSpec{Program: "pg-origin-host"})
	if err != nil {
		t.Fatalf("exec host: %v", err)
	}
	t.Cleanup(func() {
		app.RequestExit(0)
		app.WaitFor()
	})
	return app
}

// wait bounds Session.Wait.
func wait(t *testing.T, s *playground.Session) (int, error) {
	t.Helper()
	select {
	case <-s.Done():
	case <-time.After(waitTimeout):
		t.Fatalf("session %d hung", s.ID())
	}
	return s.Wait()
}

// syncBuf is a concurrency-safe stdout sink.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// checkConservation asserts the two pool invariants at quiescence.
func checkConservation(t *testing.T, st playground.Stats) {
	t.Helper()
	if st.Submitted != st.Placed+st.Rejected {
		t.Errorf("conservation: submitted %d != placed %d + rejected %d", st.Submitted, st.Placed, st.Rejected)
	}
	if st.Placed != st.Completed+st.Failed {
		t.Errorf("conservation: placed %d != completed %d + failed %d (in-flight at quiescence)", st.Placed, st.Completed, st.Failed)
	}
}

// TestMultiplexedSessions runs 32 concurrent sessions across 2
// workers and asserts each worker served them all over ONE dialed
// connection.
func TestMultiplexedSessions(t *testing.T) {
	const n = 32
	_, mgr, addrs := newPlayground(t, 2, playground.Config{Capacity: n})
	var wg sync.WaitGroup
	outs := make([]*syncBuf, n)
	sessions := make([]*playground.Session, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		outs[i] = &syncBuf{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := mgr.Submit(playground.SessionSpec{
				Program: "pg-echo",
				Args:    []string{fmt.Sprintf("session-%d", i)},
				User:    fmt.Sprintf("user%d", i),
				Stdin:   strings.NewReader(fmt.Sprintf("payload-%d\n", i)),
				Stdout:  outs[i],
			})
			sessions[i], errs[i] = s, err
		}(i)
	}
	wg.Wait()
	byWorker := map[string]int{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		code, err := wait(t, sessions[i])
		if err != nil || code != 0 {
			t.Fatalf("session %d: code %d err %v", i, code, err)
		}
		want := fmt.Sprintf("session-%d\npayload-%d\n", i, i)
		if got := outs[i].String(); got != want {
			t.Errorf("session %d output %q, want %q", i, got, want)
		}
		byWorker[sessions[i].Worker()]++
	}
	for _, addr := range addrs {
		w, ok := mgr.LocalWorker(addr)
		if !ok {
			t.Fatalf("no local worker %s", addr)
		}
		if c := w.ConnCount(); c != 1 {
			t.Errorf("worker %s accepted %d connections, want 1 (multiplexing broken)", addr, c)
		}
		if byWorker[addr] == 0 {
			t.Errorf("worker %s got no sessions: placement %v", addr, byWorker)
		}
	}
	st := mgr.Stats()
	if st.Submitted != n || st.Placed != n || st.Completed != n || st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("stats %+v, want %d submitted=placed=completed", st, n)
	}
	checkConservation(t, st)
}

// trackedReader counts Read calls on a shared origin stdin.
type trackedReader struct {
	reads atomic.Int32
	r     io.Reader
}

func (tr *trackedReader) Read(p []byte) (int, error) {
	tr.reads.Add(1)
	return tr.r.Read(p)
}

// TestStdinPumpedOnDemandOnly pins the demand-driven stdin protocol:
// a session whose program never reads stdin must never read the
// origin-side reader either (an eager pump would steal input from a
// shared interactive stdin, e.g. the shell running `rexec pool echo`),
// while a stdin-consuming program still gets the bytes.
func TestStdinPumpedOnDemandOnly(t *testing.T) {
	_, mgr, _ := newPlayground(t, 1, playground.Config{})

	// pg-user prints the session user and exits without touching stdin.
	untouched := &trackedReader{r: strings.NewReader("never read\n")}
	s, err := mgr.Submit(playground.SessionSpec{Program: "pg-user", User: "alice", Stdin: untouched, Stdout: &syncBuf{}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if code, err := wait(t, s); err != nil || code != 0 {
		t.Fatalf("pg-user: code %d err %v", code, err)
	}
	// A stray opStdinReq would start the pump asynchronously; give it a
	// moment to prove it never arrives.
	time.Sleep(50 * time.Millisecond)
	if n := untouched.reads.Load(); n != 0 {
		t.Errorf("origin stdin read %d times by a program that never reads stdin", n)
	}

	// pg-echo copies stdin: the same tracked reader must be consumed.
	consumed := &trackedReader{r: strings.NewReader("on demand\n")}
	out := &syncBuf{}
	s2, err := mgr.Submit(playground.SessionSpec{Program: "pg-echo", User: "alice", Stdin: consumed, Stdout: out})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if code, err := wait(t, s2); err != nil || code != 0 {
		t.Fatalf("pg-echo: code %d err %v", code, err)
	}
	if got := out.String(); !strings.Contains(got, "on demand") {
		t.Errorf("pg-echo output %q, want the stdin payload", got)
	}
	if consumed.reads.Load() == 0 {
		t.Error("stdin-consuming program never triggered the pump")
	}
}

// TestSandboxAndAuthenticatedUsers checks the playground account
// model: a password-less session runs as the worker's sacrificial
// sandbox account whoever submitted it; a password authenticates a
// real worker-side account; a bad password fails cleanly.
func TestSandboxAndAuthenticatedUsers(t *testing.T) {
	_, mgr, addrs := newPlayground(t, 1, playground.Config{})
	w, _ := mgr.LocalWorker(addrs[0])
	if _, err := w.Platform().AddUser("carol", "tunnels"); err != nil {
		t.Fatalf("add worker account: %v", err)
	}

	out := &syncBuf{}
	s, err := mgr.Submit(playground.SessionSpec{Program: "pg-user", User: "alice", Stdout: out})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if code, err := wait(t, s); err != nil || code != 0 {
		t.Fatalf("sandbox session: code %d err %v", code, err)
	}
	if got := strings.TrimSpace(out.String()); got != playground.SandboxUser {
		t.Errorf("password-less session ran as %q, want %q", got, playground.SandboxUser)
	}

	out = &syncBuf{}
	s, err = mgr.Submit(playground.SessionSpec{Program: "pg-user", User: "carol", Password: "tunnels", Stdout: out})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if code, err := wait(t, s); err != nil || code != 0 {
		t.Fatalf("authenticated session: code %d err %v", code, err)
	}
	if got := strings.TrimSpace(out.String()); got != "carol" {
		t.Errorf("authenticated session ran as %q, want carol", got)
	}

	s, err = mgr.Submit(playground.SessionSpec{Program: "pg-user", User: "carol", Password: "wrong"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	code, err := wait(t, s)
	if err == nil || code != playground.ExitAuthFailed {
		t.Errorf("bad password: code %d err %v, want ExitAuthFailed and error", code, err)
	}
	checkConservation(t, mgr.Stats())
}

// TestStickyPlacement pins a user to their worker even when another
// worker is less loaded, and re-pins after the worker dies.
func TestStickyPlacement(t *testing.T) {
	_, mgr, _ := newPlayground(t, 2, playground.Config{Capacity: 8})
	var pipes []*io.PipeWriter
	hold := func(user string) *playground.Session {
		t.Helper()
		r, w := io.Pipe()
		pipes = append(pipes, w)
		s, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: user, Stdin: r})
		if err != nil {
			t.Fatalf("submit %s: %v", user, err)
		}
		return s
	}
	release := func(sessions ...*playground.Session) {
		for _, p := range pipes {
			_ = p.Close()
		}
		for _, s := range sessions {
			wait(t, s)
		}
	}

	a1 := hold("alice")
	b1 := hold("bob")   // balances onto the other worker
	c1 := hold("carol") // tie-break: alice's worker is now heavier by one
	a2 := hold("alice") // sticky must override least-loaded
	if a2.Worker() != a1.Worker() {
		t.Errorf("alice session moved: %s then %s (sticky broken)", a1.Worker(), a2.Worker())
	}
	if b1.Worker() == a1.Worker() && c1.Worker() == a1.Worker() {
		t.Errorf("all sessions on %s: least-loaded placement broken", a1.Worker())
	}

	// Kill alice's worker: her next session must land on the survivor.
	victim := a1.Worker()
	if err := mgr.KillWorker(victim); err != nil {
		t.Fatalf("kill %s: %v", victim, err)
	}
	if _, err := wait(t, a1); err == nil {
		t.Errorf("in-flight session on killed worker returned no error")
	}
	a3 := hold("alice")
	if a3.Worker() == victim {
		t.Errorf("alice re-pinned to dead worker %s", victim)
	}
	release(a2, b1, c1, a3)
	checkConservation(t, mgr.Stats())
}

// TestQueueingAndPromotion fills a worker's in-flight slots, queues
// behind them, rejects past the queue bound, and promotes queued
// sessions as slots free.
func TestQueueingAndPromotion(t *testing.T) {
	_, mgr, _ := newPlayground(t, 1, playground.Config{Capacity: 2, QueueCap: 4})
	var pipes []*io.PipeWriter
	var sessions []*playground.Session
	for i := 0; i < 6; i++ {
		r, w := io.Pipe()
		pipes = append(pipes, w)
		s, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: fmt.Sprintf("u%d", i), Stdin: r})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	if st := mgr.Stats(); st.Placed != 2 {
		t.Errorf("placed %d with capacity 2, want 2 (rest queued)", st.Placed)
	}
	if _, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: "over"}); err == nil {
		t.Errorf("7th session accepted past capacity+queue bound")
	}
	for _, w := range pipes {
		_ = w.Close()
	}
	for i, s := range sessions {
		if code, err := wait(t, s); err != nil || code != 0 {
			t.Errorf("session %d: code %d err %v", i, code, err)
		}
	}
	st := mgr.Stats()
	if st.Submitted != 7 || st.Placed != 6 || st.Completed != 6 || st.Rejected != 1 {
		t.Errorf("stats %+v, want 7 submitted, 6 placed+completed, 1 rejected", st)
	}
	checkConservation(t, st)
}

// readySignal closes a channel the first time anything is written.
type readySignal struct {
	once sync.Once
	ch   chan struct{}
}

func newReadySignal() *readySignal { return &readySignal{ch: make(chan struct{})} }

func (r *readySignal) Write(p []byte) (int, error) {
	r.once.Do(func() { close(r.ch) })
	return len(p), nil
}

// TestUIProxyRoundTrip runs the full event proxy: a remote applet's
// window appears on the origin display, an origin input event reaches
// the remote listener, and its reply comes back through PostBatch to
// an origin-side listener.
func TestUIProxyRoundTrip(t *testing.T) {
	origin, mgr, _ := newPlayground(t, 1, playground.Config{})
	owner := hostApp(t, origin)
	display := origin.Display()

	ready := newReadySignal()
	r, w := io.Pipe()
	s, err := mgr.Submit(playground.SessionSpec{
		Program: "pg-ui",
		User:    "alice",
		Stdin:   r,
		Stdout:  ready,
		Owner:   owner,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-ready.ch:
	case <-time.After(waitTimeout):
		t.Fatal("remote applet never reported ready")
	}

	wins := display.WindowsOf(events.OwnerID(owner.ID()))
	if len(wins) != 1 {
		t.Fatalf("origin display has %d windows for the owner, want 1 mirror window", len(wins))
	}
	win := wins[0]

	replies := make(chan int, 16)
	if err := win.AddListener("out", func(_ *vm.Thread, e events.Event) {
		replies <- e.X
	}); err != nil {
		t.Fatalf("origin listener: %v", err)
	}

	if err := display.Post(events.Event{Window: win.ID(), Component: "in", Kind: events.KindAction, X: 41}); err != nil {
		t.Fatalf("post: %v", err)
	}
	select {
	case x := <-replies:
		if x != 42 {
			t.Errorf("round trip returned %d, want 42", x)
		}
	case <-time.After(waitTimeout):
		t.Fatal("no proxied reply: event round trip lost")
	}

	_ = w.Close()
	if code, err := wait(t, s); err != nil || code != 0 {
		t.Fatalf("session end: code %d err %v", code, err)
	}
	if !win.Closed() {
		t.Errorf("mirror window still open after session close")
	}
	checkConservation(t, mgr.Stats())
}

// TestCancel cancels both a placed and a queued session.
func TestCancel(t *testing.T) {
	_, mgr, _ := newPlayground(t, 1, playground.Config{Capacity: 1, QueueCap: 4})
	r1, w1 := io.Pipe()
	defer w1.Close()
	placed, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: "a", Stdin: r1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	r2, w2 := io.Pipe()
	defer w2.Close()
	queued, err := mgr.Submit(playground.SessionSpec{Program: "pg-hold", User: "b", Stdin: r2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	queued.Cancel()
	if _, err := wait(t, queued); err == nil {
		t.Errorf("canceled queued session reported success")
	}
	placed.Cancel()
	if code, _ := wait(t, placed); code != playground.ExitCanceled {
		t.Errorf("canceled placed session exited %d, want %d", code, playground.ExitCanceled)
	}
	checkConservation(t, mgr.Stats())
}
