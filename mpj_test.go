package mpj

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// execShell runs a command line through "sh -c" as the given user.
func execShell(t *testing.T, p *Platform, userName, line string) (string, int) {
	t.Helper()
	u, err := p.Users().Lookup(userName)
	if err != nil {
		t.Fatal(err)
	}
	var sink Buffer
	app, err := p.Exec(ExecSpec{
		Program: "sh",
		Args:    []string{"-c", line},
		User:    u,
		Dir:     u.Home,
		Stdout:  NewWriteStream("out", &sink),
		Stderr:  NewWriteStream("err", &sink),
	})
	if err != nil {
		t.Fatal(err)
	}
	code := app.WaitFor()
	return sink.String(), code
}

func TestStandardPlatformQuickstart(t *testing.T) {
	p, store, err := NewStandardPlatform(StandardConfig{Motd: "welcome\n"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	if store == nil {
		t.Fatal("nil applet store")
	}
	out, code := execShell(t, p, "alice", "echo quickstart works")
	if code != 0 || out != "quickstart works\n" {
		t.Fatalf("out=%q code=%d", out, code)
	}
	// Default users exist.
	for _, name := range []string{"alice", "bob"} {
		if _, err := p.Users().Lookup(name); err != nil {
			t.Errorf("missing default user %s: %v", name, err)
		}
	}
	// The motd landed.
	data, err := p.FS().ReadFile("root", "/etc/motd")
	if err != nil || string(data) != "welcome\n" {
		t.Fatalf("motd = %q, %v", data, err)
	}
}

// TestTwoUsersConcurrentSessions is the headline scenario of the
// paper's abstract: multiple applications, run by different users,
// inside one VM, isolated from each other.
func TestTwoUsersConcurrentSessions(t *testing.T) {
	p, _, err := NewStandardPlatform(StandardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	type result struct {
		out  string
		code int
	}
	results := make(chan result, 2)
	for _, who := range []string{"alice", "bob"} {
		go func(who string) {
			out, code := execShell(t, p, who,
				"whoami; echo private-"+who+" > note.txt; cat note.txt")
			results <- result{out: out, code: code}
		}(who)
	}
	outs := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.code != 0 {
				t.Fatalf("session failed: %q", r.out)
			}
			outs[r.out] = true
		case <-time.After(10 * time.Second):
			t.Fatal("sessions hung")
		}
	}
	if !outs["alice\nprivate-alice\n"] || !outs["bob\nprivate-bob\n"] {
		t.Fatalf("session outputs = %v", outs)
	}
	// Cross-user isolation held.
	out, code := execShell(t, p, "bob", "cat /home/alice/note.txt")
	if code == 0 || !strings.Contains(out, "access denied") {
		t.Fatalf("bob read alice's note: %q (code %d)", out, code)
	}
}

func TestPolicyRoundtripThroughFacade(t *testing.T) {
	pol, err := ParsePolicy(`grant user "carol" { permission file "/data/-", "read"; };`)
	if err != nil {
		t.Fatal(err)
	}
	if pol.PermissionsForUser("carol").Len() != 1 {
		t.Fatal("grant missing")
	}
	if DefaultPolicy() == nil {
		t.Fatal("nil default policy")
	}
}

func TestFacadePipesAndTerminal(t *testing.T) {
	r, w := NewPipe(64)
	term := NewTerminal(r, &Buffer{})
	go func() {
		_, _ = w.Write([]byte("typed\n"))
		_ = w.Close()
	}()
	line, err := term.ReadLine()
	if err != nil || line != "typed" {
		t.Fatalf("line = %q, %v", line, err)
	}
}

// TestVMHaltsWhenLastAppExits wires the full stack in Figure 1 mode.
func TestVMHaltsWhenLastAppExits(t *testing.T) {
	p, _, err := NewStandardPlatform(StandardConfig{ExitWhenIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	u, err := p.Users().Lookup("alice")
	if err != nil {
		t.Fatal(err)
	}
	app, err := p.Exec(ExecSpec{Program: "sh", Args: []string{"-c", "echo bye"}, User: u})
	if err != nil {
		t.Fatal(err)
	}
	app.WaitFor()
	select {
	case <-p.VM().Done():
	case <-time.After(10 * time.Second):
		t.Fatal("VM did not halt after last application")
	}
}

// TestStressConcurrentSessions hammers the platform with many
// concurrent shell sessions running pipelines, redirections and
// per-user file traffic — shaking out lifecycle and locking races
// (run under -race in CI).
func TestStressConcurrentSessions(t *testing.T) {
	p, _, err := NewStandardPlatform(StandardConfig{Name: "stress"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	const sessions = 12
	const rounds = 5
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		who := "alice"
		if s%2 == 1 {
			who = "bob"
		}
		go func(id int, who string) {
			u, err := p.Users().Lookup(who)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				var sink Buffer
				line := fmt.Sprintf(
					"echo round-%d-%d > s%d.txt ; cat s%d.txt | grep round | wc ; rm s%d.txt",
					id, r, id, id, id)
				app, err := p.Exec(ExecSpec{
					Program: "sh", Args: []string{"-c", line},
					User: u, Dir: u.Home,
					Stdout: NewWriteStream("out", &sink),
					Stderr: NewWriteStream("err", &sink),
				})
				if err != nil {
					errs <- err
					return
				}
				if code := app.WaitFor(); code != 0 {
					errs <- fmt.Errorf("session %d round %d: exit %d: %q", id, r, code, sink.String())
					return
				}
				if !strings.Contains(sink.String(), "1       1") {
					errs <- fmt.Errorf("session %d round %d: output %q", id, r, sink.String())
					return
				}
			}
			errs <- nil
		}(s, who)
	}
	for s := 0; s < sessions; s++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("stress sessions hung")
		}
	}
	if got := len(p.Applications()); got != 0 {
		t.Fatalf("%d applications leaked", got)
	}
}
