// Package mpj is the public API of the multi-processing Java-style
// platform: a reproduction of Balfanz and Gong, "Experience with
// Secure Multi-Processing in Java" (ICDCS 1998).
//
// The platform runs multiple applications — each a set of threads with
// its own running user, standard streams, working directory,
// properties and reloaded System class — inside one virtual machine,
// protected from each other by namespace separation and a security
// architecture that combines code-source-based with user-based access
// control.
//
// Quick start:
//
//	p, _ := mpj.NewStandardPlatform(mpj.StandardConfig{})
//	defer p.Shutdown()
//	alice, _ := p.Users().Lookup("alice")
//	app, _ := p.Exec(mpj.ExecSpec{Program: "sh", Args: []string{"-c", "echo hi"}, User: alice})
//	app.WaitFor()
//
// The subsystems are organized as:
//
//	internal/audit     tamper-evident kernel audit trail (hash-chained)
//	internal/vm        virtual-machine kernel (threads, groups, Figure 1)
//	internal/classes   class files, loaders, namespaces (Figure 5)
//	internal/security  permissions, policy, stack inspection (§5.3, §5.6)
//	internal/user      accounts and authentication (§5.2)
//	internal/vfs       Unix-like in-memory filesystem
//	internal/netsim    in-memory network (applet connect-back, §6.3)
//	internal/streams   pipes and owned standard streams (§5.1)
//	internal/core      the Application abstraction — the contribution
//	internal/events    display server; Figure 2 vs Figure 4 dispatching
//	internal/terminal  the Java terminal (§6.2)
//	internal/shell     the Bourne-like shell (§6.1)
//	internal/coreutils ls, cat, login and friends (§6)
//	internal/applet    the ported Appletviewer and sandbox (§6.3)
package mpj

import (
	"fmt"

	"mpj/internal/applet"
	"mpj/internal/audit"
	"mpj/internal/classes"
	"mpj/internal/core"
	"mpj/internal/coreutils"
	"mpj/internal/events"
	"mpj/internal/netsim"
	"mpj/internal/security"
	"mpj/internal/streams"
	"mpj/internal/terminal"
	"mpj/internal/user"
	"mpj/internal/vfs"
	"mpj/internal/vm"
)

// Core platform types.
type (
	// Platform is the assembled multi-processing virtual machine.
	Platform = core.Platform
	// Config configures a bare platform.
	Config = core.Config
	// Application is one running application (Section 5.1).
	Application = core.Application
	// AppID identifies an application.
	AppID = core.AppID
	// Context is the API surface application code sees.
	Context = core.Context
	// ExecSpec describes an application launch.
	ExecSpec = core.ExecSpec
	// Program is an installable program.
	Program = core.Program
	// MainFunc is a program entry point.
	MainFunc = core.MainFunc
	// ObjectTx is one atomic, permission-checked multi-object
	// transaction over the shared-object space (Context.UpdateObjects).
	ObjectTx = core.ObjectTx
	// QuotaConfig sets per-user admission quotas (apps, threads,
	// queued UI events).
	QuotaConfig = core.QuotaConfig
	// QuotaStats reports cumulative admission decisions.
	QuotaStats = core.QuotaStats
)

// ErrQuotaExceeded is returned when a per-user admission quota would
// be exceeded.
var ErrQuotaExceeded = core.ErrQuotaExceeded

// Substrate types commonly needed by users of the platform.
type (
	// VM is the virtual-machine kernel.
	VM = vm.VM
	// Thread is a VM green thread.
	Thread = vm.Thread
	// ThreadGroup is a node of the thread-group hierarchy.
	ThreadGroup = vm.ThreadGroup
	// User is an account.
	User = user.User
	// Stream is an ownership-tracked byte stream.
	Stream = streams.Stream
	// Buffer is a concurrency-safe output sink.
	Buffer = streams.Buffer
	// Terminal is the Section 6.2 terminal.
	Terminal = terminal.Terminal
	// Window is a display-server window.
	Window = events.Window
	// Event is an input event.
	Event = events.Event
	// DisplayServer owns windows and dispatches events.
	DisplayServer = events.Server
	// AppletDefinition describes a downloadable applet.
	AppletDefinition = applet.Definition
	// AppletStore is the simulated web of applets.
	AppletStore = applet.Store
	// AppletContext is the sandboxed applet API.
	AppletContext = applet.Context
	// Policy is the system security policy.
	Policy = security.Policy
	// Permission is a typed capability.
	Permission = security.Permission
	// Grant is one policy entry.
	Grant = security.Grant
	// FileInfo describes a file.
	FileInfo = vfs.FileInfo
	// Network is the simulated network.
	Network = netsim.Network
	// Class is a linked class.
	Class = classes.Class
	// AuditLog is the VM-wide tamper-evident audit log.
	AuditLog = audit.Log
	// AuditEvent is what instrumented code emits into the audit log.
	AuditEvent = audit.Event
	// AuditRecord is a chained audit event.
	AuditRecord = audit.Record
	// AuditQuery filters the persisted audit trail.
	AuditQuery = audit.Query
	// AuditCategory is the audit event-category bitmask.
	AuditCategory = audit.Category
	// AuditSubscription is a live tail on the audit stream.
	AuditSubscription = audit.Subscription
)

// Dispatch architectures (Figure 2 baseline vs Figure 4 redesign).
const (
	SingleDispatcher = events.SingleDispatcher
	PerAppDispatcher = events.PerAppDispatcher
)

// Audit event categories (enable/disable via AuditLog.SetMask, or the
// auditctl shell builtin).
const (
	AuditAccess = audit.CatAccess
	AuditDeny   = audit.CatDeny
	AuditThread = audit.CatThread
	AuditApp    = audit.CatApp
	AuditFile   = audit.CatFile
	AuditNet    = audit.CatNet
	AuditShell  = audit.CatShell
)

// NewPlatform assembles a bare platform (no programs installed).
func NewPlatform(cfg Config) (*Platform, error) { return core.NewPlatform(cfg) }

// DefaultPolicy returns the Section 5.3 example policy.
func DefaultPolicy() *Policy { return core.DefaultPolicy() }

// ParsePolicy parses policy-file text.
func ParsePolicy(text string) (*Policy, error) { return security.ParsePolicy(text) }

// InstallCoreutils registers the shell and the utility programs.
func InstallCoreutils(p *Platform) error { return coreutils.InstallAll(p) }

// InstallAppletviewer registers the appletviewer over a store.
func InstallAppletviewer(p *Platform, store *AppletStore) error { return applet.Install(p, store) }

// NewAppletStore creates an empty applet store.
func NewAppletStore() *AppletStore { return applet.NewStore() }

// NewPipe creates a buffered in-VM pipe.
func NewPipe(capacity int) (*streams.PipeReader, *streams.PipeWriter) {
	return streams.NewPipe(capacity)
}

// NewReadStream wraps a reader as a system-owned stream (for wiring
// test or host input into an application).
func NewReadStream(name string, r interface{ Read([]byte) (int, error) }) *Stream {
	return streams.NewReadStream(name, streams.OwnerSystem, r)
}

// NewWriteStream wraps a writer as a system-owned stream.
func NewWriteStream(name string, w interface{ Write([]byte) (int, error) }) *Stream {
	return streams.NewWriteStream(name, streams.OwnerSystem, w)
}

// NewTerminal creates a terminal over arbitrary reader/writer.
func NewTerminal(in interface{ Read([]byte) (int, error) }, out interface{ Write([]byte) (int, error) }) *Terminal {
	return terminal.New(in, out)
}

// ContextFor recovers the application context bound to a thread (e.g.
// inside an event listener).
func ContextFor(t *Thread) *Context { return core.ContextFor(t) }

// UserSpec declares an account for NewStandardPlatform.
type UserSpec struct {
	Name     string
	Password string
}

// StandardConfig configures a batteries-included platform.
type StandardConfig struct {
	// Name names the VM. Defaults to "mpj".
	Name string
	// Users lists accounts to create. Defaults to alice and bob (with
	// passwords "wonderland" and "builder").
	Users []UserSpec
	// DisplayMode enables the display server (0 = no display).
	DisplayMode events.DispatchMode
	// ExitWhenIdle reproduces the Figure 1 lifecycle: the VM halts
	// when the last application finishes.
	ExitWhenIdle bool
	// Motd, if non-empty, is written to /etc/motd.
	Motd string
	// Quotas sets per-user admission quotas; the zero value disables
	// quota accounting entirely.
	Quotas QuotaConfig
	// NoLaunchTemplates disables the sealed application-template
	// launch fast path (benchmarks use it to measure the cold path).
	NoLaunchTemplates bool
}

// NewStandardPlatform boots a platform with the default policy, the
// coreutils and appletviewer installed, user accounts created, and
// (optionally) a display server — the configuration the examples, the
// interactive shell and the benchmark harness all build on.
func NewStandardPlatform(cfg StandardConfig) (*Platform, *AppletStore, error) {
	p, err := core.NewPlatform(core.Config{
		Name:              cfg.Name,
		ExitWhenIdle:      cfg.ExitWhenIdle,
		Quotas:            cfg.Quotas,
		NoLaunchTemplates: cfg.NoLaunchTemplates,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := coreutils.InstallAll(p); err != nil {
		p.Shutdown()
		return nil, nil, fmt.Errorf("mpj: install coreutils: %w", err)
	}
	store := applet.NewStore()
	if err := applet.Install(p, store); err != nil {
		p.Shutdown()
		return nil, nil, fmt.Errorf("mpj: install appletviewer: %w", err)
	}
	accounts := cfg.Users
	if accounts == nil {
		accounts = []UserSpec{{Name: "alice", Password: "wonderland"}, {Name: "bob", Password: "builder"}}
	}
	for _, acc := range accounts {
		if _, err := p.AddUser(acc.Name, acc.Password); err != nil {
			p.Shutdown()
			return nil, nil, fmt.Errorf("mpj: add user %s: %w", acc.Name, err)
		}
	}
	if cfg.Motd != "" {
		if err := p.FS().WriteFile(vfs.Root, "/etc/motd", []byte(cfg.Motd), 0o644); err != nil {
			p.Shutdown()
			return nil, nil, fmt.Errorf("mpj: write motd: %w", err)
		}
	}
	if cfg.DisplayMode != 0 {
		p.EnableDisplay(cfg.DisplayMode)
	}
	return p, store, nil
}
