package mpj

// Benchmark harness: one benchmark family per experiment of
// EXPERIMENTS.md / DESIGN.md. The paper is an experience paper whose
// figures are architectural, so each family quantifies the performance
// claim attached to the corresponding figure or section:
//
//	E1  Figure 1   application launch/exit inside one VM vs a fresh VM per application
//	E2  Figure 2   event latency under the single global dispatcher
//	E3  Figure 3   thread spawn cost with group accounting
//	E4  Figure 4   event latency under per-application dispatchers
//	E5  Figure 5   System-class reload cost vs delegated (shared) load
//	E6  Section 2  context-switch cost: in-VM pipes vs OS pipes vs two OS processes
//	E7  Section 2  IPC throughput: in-VM pipe vs OS pipe
//	E8  §5.3/§5.6  access-control cost: stack depth × policy kind
//	E9  §6.3       applet fetch/verify/load/run cost
//	E10 §6.1       shell pipeline launch+transfer cost by stage count
//	E11 §5.2       login (authenticate + setUser + shell) cost

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"testing"
	"time"

	"mpj/internal/applet"
	"mpj/internal/classes"
	"mpj/internal/core"
	"mpj/internal/events"
	"mpj/internal/security"
	"mpj/internal/streams"
	"mpj/internal/vm"
)

// echoChildEnv marks the re-exec'ed process as the E6 echo child.
const echoChildEnv = "MPJ_ECHO_CHILD"

// TestMain lets the test binary double as the cross-process echo child
// for BenchmarkE6ContextSwitchTwoProcesses.
func TestMain(m *testing.M) {
	if os.Getenv(echoChildEnv) == "1" {
		buf := make([]byte, 1)
		for {
			if _, err := os.Stdin.Read(buf); err != nil {
				os.Exit(0)
			}
			if _, err := os.Stdout.Write(buf); err != nil {
				os.Exit(0)
			}
		}
	}
	os.Exit(m.Run())
}

// benchPlatform boots a standard platform for benchmarks.
func benchPlatform(b *testing.B) *Platform {
	b.Helper()
	p, _, err := NewStandardPlatform(StandardConfig{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Shutdown)
	return p
}

func benchUser(b *testing.B, p *Platform, name string) *User {
	b.Helper()
	u, err := p.Users().Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// registerBenchProgram installs a program, failing the benchmark on
// error.
func registerBenchProgram(b *testing.B, p *Platform, prog Program) {
	b.Helper()
	if err := p.RegisterProgram(prog); err != nil {
		b.Fatal(err)
	}
}

// busyWait spins for roughly d without sleeping (sleep granularity
// would dominate sub-millisecond latency measurements).
func busyWait(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// ---------------------------------------------------------------- E1

// BenchmarkE1AppLaunchExit measures launching an application (thread
// group + state + loader + reloaded System class + main thread) and
// waiting for it, inside one running VM.
func BenchmarkE1AppLaunchExit(b *testing.B) {
	p := benchPlatform(b)
	registerBenchProgram(b, p, Program{Name: "noop", Main: func(*Context, []string) int { return 0 }})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := p.Exec(ExecSpec{Program: "noop"})
		if err != nil {
			b.Fatal(err)
		}
		app.WaitFor()
	}
}

// BenchmarkE1FreshVMPerApp is the Section 2 baseline: one VM per
// application — every launch pays full VM bootstrap (system threads,
// policy, filesystem skeleton, program installation).
func BenchmarkE1FreshVMPerApp(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, _, err := NewStandardPlatform(StandardConfig{Name: "fresh"})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.RegisterProgram(Program{Name: "noop", Main: func(*Context, []string) int { return 0 }}); err != nil {
			b.Fatal(err)
		}
		app, err := p.Exec(ExecSpec{Program: "noop"})
		if err != nil {
			b.Fatal(err)
		}
		app.WaitFor()
		p.Shutdown()
	}
}

// ------------------------------------------------------------ E2 / E4

// dispatcherLatency measures how long a fast application waits for its
// event while another application's slow (200µs) callback is in
// flight, under the given dispatch mode. Every iteration waits for
// BOTH callbacks (so neither queue grows without bound); the figure of
// merit is the custom metric "fast-ns/op" — the latency of the fast
// application's event. Under Figure 2 it includes the slow callback;
// under Figure 4 it does not.
func dispatcherLatency(b *testing.B, mode events.DispatchMode) {
	b.Helper()
	p := benchPlatform(b)
	display := p.EnableDisplay(mode)

	const slowWork = 200 * time.Microsecond
	type winPair struct {
		slow, fast *Window
	}
	wins := make(chan winPair, 1)
	fastWin := make(chan *Window, 1)
	fastDone := make(chan time.Time, 1)
	slowDone := make(chan struct{}, 1)

	registerBenchProgram(b, p, Program{Name: "gui-slow", Main: func(ctx *Context, args []string) int {
		w, err := ctx.OpenWindow("slow")
		if err != nil {
			b.Error(err)
			return 1
		}
		_ = w.AddListener("work", func(*Thread, Event) {
			busyWait(slowWork)
			slowDone <- struct{}{}
		})
		child, err := ctx.Exec("gui-fast")
		if err != nil {
			b.Error(err)
			return 1
		}
		_ = child
		wins <- winPair{slow: w, fast: <-fastWin}
		<-ctx.Thread().StopChan()
		return 0
	}})
	registerBenchProgram(b, p, Program{Name: "gui-fast", Main: func(ctx *Context, args []string) int {
		w, err := ctx.OpenWindow("fast")
		if err != nil {
			b.Error(err)
			return 1
		}
		_ = w.AddListener("ping", func(*Thread, Event) { fastDone <- time.Now() })
		fastWin <- w
		<-ctx.Thread().StopChan()
		return 0
	}})

	alice := benchUser(b, p, "alice")
	app, err := p.Exec(ExecSpec{Program: "gui-slow", User: alice})
	if err != nil {
		b.Fatal(err)
	}
	pair := <-wins
	var fastTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := display.Post(Event{Window: pair.slow.ID(), Component: "work", Kind: events.KindAction}); err != nil {
			b.Fatal(err)
		}
		if err := display.Post(Event{Window: pair.fast.ID(), Component: "ping", Kind: events.KindAction}); err != nil {
			b.Fatal(err)
		}
		handled := <-fastDone
		fastTotal += handled.Sub(start)
		<-slowDone
	}
	b.StopTimer()
	b.ReportMetric(float64(fastTotal.Nanoseconds())/float64(b.N), "fast-ns/op")
	app.RequestExit(0)
	app.WaitFor()
}

// BenchmarkE2SingleDispatcherLatency: Figure 2 baseline — the fast
// application's event is stuck behind the slow callback.
func BenchmarkE2SingleDispatcherLatency(b *testing.B) {
	dispatcherLatency(b, events.SingleDispatcher)
}

// BenchmarkE4PerAppDispatcherLatency: Figure 4 redesign — independent
// queues; the fast event does not wait for the slow one.
func BenchmarkE4PerAppDispatcherLatency(b *testing.B) {
	dispatcherLatency(b, events.PerAppDispatcher)
}

// ---------------------------------------------------------------- E3

// BenchmarkE3ThreadSpawn measures spawning (and joining) a thread in
// an application's group, including daemon accounting and security
// context inheritance.
func BenchmarkE3ThreadSpawn(b *testing.B) {
	p := benchPlatform(b)
	ready := make(chan *Context, 1)
	registerBenchProgram(b, p, Program{Name: "host", Main: func(ctx *Context, args []string) int {
		ready <- ctx
		<-ctx.Thread().StopChan()
		return 0
	}})
	app, err := p.Exec(ExecSpec{Program: "host", User: benchUser(b, p, "alice")})
	if err != nil {
		b.Fatal(err)
	}
	ctx := <-ready
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th, err := ctx.SpawnThread("w", true, func(*Context) {})
		if err != nil {
			b.Fatal(err)
		}
		th.Join()
	}
	b.StopTimer()
	app.RequestExit(0)
	app.WaitFor()
}

// ---------------------------------------------------------------- E5

// BenchmarkE5SystemClassReload measures defining a fresh incarnation
// of the System class in a new application loader (the Section 5.5
// reload), per application launch.
func BenchmarkE5SystemClassReload(b *testing.B) {
	p := benchPlatform(b)
	boot := p.BootLoader()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := classes.NewChildLoader(fmt.Sprintf("bench-%d", i), boot, []string{core.SystemClassName})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Load(nil, core.SystemClassName); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5DelegatedClassLoad is the ablation baseline: the same
// load satisfied by parent delegation (shared class, no reload).
func BenchmarkE5DelegatedClassLoad(b *testing.B) {
	p := benchPlatform(b)
	boot := p.BootLoader()
	if _, err := boot.Load(nil, core.SystemClassName); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := classes.NewChildLoader(fmt.Sprintf("bench-%d", i), boot, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Load(nil, core.SystemClassName); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- E6

// BenchmarkE6ContextSwitchSingleVM: one round trip between two
// applications in ONE VM over in-VM pipes (two scheduler handoffs, no
// kernel involvement) — the single-address-space case of Section 2.
func BenchmarkE6ContextSwitchSingleVM(b *testing.B) {
	p := benchPlatform(b)
	registerBenchProgram(b, p, Program{Name: "echo-loop", Main: func(ctx *Context, args []string) int {
		buf := make([]byte, 1)
		for {
			if _, err := ctx.Stdin().Read(buf); err != nil {
				return 0
			}
			if _, err := ctx.Stdout().Write(buf); err != nil {
				return 0
			}
		}
	}})
	toAppR, toAppW := streams.NewPipe(64)
	fromAppR, fromAppW := streams.NewPipe(64)
	app, err := p.Exec(ExecSpec{
		Program: "echo-loop",
		Stdin:   streams.NewReadStream("in", streams.OwnerSystem, toAppR),
		Stdout:  streams.NewWriteStream("out", streams.OwnerSystem, fromAppW),
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := []byte{0x42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := toAppW.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(fromAppR, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = toAppW.Close()
	app.WaitFor()
}

// BenchmarkE6ContextSwitchOSPipe: the same round trip through
// kernel-mediated OS pipes (two syscall-crossing handoffs, one
// process).
func BenchmarkE6ContextSwitchOSPipe(b *testing.B) {
	toR, toW, err := os.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	fromR, fromW, err := os.Pipe()
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := toR.Read(buf); err != nil {
				return
			}
			if _, err := fromW.Write(buf); err != nil {
				return
			}
		}
	}()
	defer func() {
		_ = toW.Close()
		_ = fromR.Close()
	}()
	buf := []byte{0x42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := toW.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(fromR, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6ContextSwitchTwoProcesses: the full "launch multiple
// JVMs" baseline — one round trip to a separate OS process (real
// address-space switches).
func BenchmarkE6ContextSwitchTwoProcesses(b *testing.B) {
	self, err := os.Executable()
	if err != nil {
		b.Skipf("cannot locate test binary: %v", err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), echoChildEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		b.Skipf("cannot start echo child: %v", err)
	}
	defer func() {
		_ = stdin.Close()
		_ = cmd.Wait()
	}()
	buf := []byte{0x42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stdin.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(stdout, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- E7

var e7Sizes = []int{64, 4096, 32768}

// BenchmarkE7IPCInVM measures streaming throughput through an in-VM
// pipe for several message sizes.
func BenchmarkE7IPCInVM(b *testing.B) {
	for _, size := range e7Sizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			r, w := streams.NewPipe(size)
			msg := make([]byte, size)
			got := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Write(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := io.ReadFull(r, got); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7IPCOSPipe is the kernel-pipe baseline for E7.
func BenchmarkE7IPCOSPipe(b *testing.B) {
	for _, size := range e7Sizes {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			r, w, err := os.Pipe()
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				_ = r.Close()
				_ = w.Close()
			}()
			msg := make([]byte, size)
			got := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Write(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := io.ReadFull(r, got); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- E8

// BenchmarkE8AccessControl measures CheckPermission cost by stack
// depth for three policy shapes: pure code-source grants, user-based
// grants (UserPermission + user permission set), and a doPrivileged
// short-circuit at the top of a deep stack.
func BenchmarkE8AccessControl(b *testing.B) {
	pol := security.MustParsePolicy(`
grant codeBase "file:/local/-" {
    permission file "/data/-", "read";
};
grant codeBase "file:/userish/-" {
    permission user;
};
grant user "alice" {
    permission file "/data/-", "read";
};
`)
	codeDomain := pol.DomainFor("tool", security.NewCodeSource("file:/local/tool"))
	userDomain := pol.DomainFor("utool", security.NewCodeSource("file:/userish/tool"))
	perm := security.NewFilePermission("/data/file", "read")

	v := vm.New(vm.Config{IdlePolicy: vm.StayOnIdle, NoBootThreads: true})
	defer v.Exit(0)

	run := func(b *testing.B, depth int, domain *security.ProtectionDomain, bindUser, privileged bool) {
		done := make(chan struct{})
		th, err := v.SpawnThread(vm.ThreadSpec{Group: v.MainGroup(), Name: "bench", Run: func(t *vm.Thread) {
			if bindUser {
				security.BindUserPermissions(t, "alice", pol.PermissionsForUser("alice"))
			}
			for i := 0; i < depth; i++ {
				t.PushFrame(vm.Frame{Class: "C", Domain: domain})
			}
			if privileged {
				restore := t.MarkTopFramePrivileged()
				defer restore()
			}
			if err := security.CheckPermission(t, perm); err != nil {
				b.Errorf("unexpected denial: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := security.CheckPermission(t, perm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(done)
		}})
		if err != nil {
			b.Fatal(err)
		}
		<-done
		th.Join()
	}

	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("codesource/depth%d", depth), func(b *testing.B) {
			run(b, depth, codeDomain, false, false)
		})
		b.Run(fmt.Sprintf("userbased/depth%d", depth), func(b *testing.B) {
			run(b, depth, userDomain, true, false)
		})
	}
	b.Run("privileged/depth64", func(b *testing.B) {
		run(b, 64, codeDomain, false, true)
	})
}

// ---------------------------------------------------------------- E9

// BenchmarkE9AppletLoad measures the full applet cycle: register the
// mobile code, build an AppletLoader, install the sandbox grant,
// verify+link+define the class, and run a trivial applet body.
func BenchmarkE9AppletLoad(b *testing.B) {
	p, store, err := NewStandardPlatform(StandardConfig{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Shutdown()
	p.Net().AddHost("applets.example.org")
	if err := store.Register(&applet.Definition{
		Name: "tiny",
		Host: "applets.example.org",
		Main: func(*applet.Context) int { return 0 },
	}); err != nil {
		b.Fatal(err)
	}
	ready := make(chan *Context, 1)
	registerBenchProgram(b, p, Program{Name: "bench-host", Main: func(ctx *Context, args []string) int {
		ready <- ctx
		<-ctx.Thread().StopChan()
		return 0
	}})
	app, err := p.Exec(ExecSpec{Program: "bench-host", User: benchUser(b, p, "alice")})
	if err != nil {
		b.Fatal(err)
	}
	ctx := <-ready
	viewer := applet.NewViewer(store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := viewer.RunApplet(ctx, "tiny"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	app.RequestExit(0)
	app.WaitFor()
}

// --------------------------------------------------------------- E10

// BenchmarkE10Pipeline measures launching and draining an N-stage
// shell pipeline ("echo data | cat | cat | ...") inside one VM.
func BenchmarkE10Pipeline(b *testing.B) {
	for _, stages := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stages%d", stages), func(b *testing.B) {
			p := benchPlatform(b)
			alice := benchUser(b, p, "alice")
			line := "echo benchmark-data"
			for i := 1; i < stages; i++ {
				line += " | cat"
			}
			var sink streams.Buffer
			out := streams.NewWriteStream("bench-out", streams.OwnerSystem, &sink)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink.Reset()
				app, err := p.Exec(ExecSpec{
					Program: "sh", Args: []string{"-c", line},
					User: alice, Stdout: out, Dir: "/tmp",
				})
				if err != nil {
					b.Fatal(err)
				}
				if code := app.WaitFor(); code != 0 {
					b.Fatalf("pipeline exit = %d", code)
				}
			}
		})
	}
}

// --------------------------------------------------------------- E11

// BenchmarkE11Login measures a full non-interactive login: credential
// check (salted hash), setUser under the policy, motd, and a shell
// that exits immediately on EOF stdin.
func BenchmarkE11Login(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := p.Exec(ExecSpec{Program: "login", Args: []string{"alice", "wonderland"}})
		if err != nil {
			b.Fatal(err)
		}
		if code := app.WaitFor(); code != 0 {
			b.Fatalf("login exit = %d", code)
		}
	}
}

// BenchmarkE8PolicyScale measures how permission-collection
// construction (PermissionsForCode) scales with the number of grant
// entries in the policy — the cost paid once per class definition.
func BenchmarkE8PolicyScale(b *testing.B) {
	for _, grants := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("grants%d", grants), func(b *testing.B) {
			pol := security.NewPolicy()
			for i := 0; i < grants; i++ {
				pol.AddGrant(&security.Grant{
					CodeBase: fmt.Sprintf("file:/apps/app%d", i),
					Perms: []security.Permission{
						security.NewFilePermission(fmt.Sprintf("/data/%d/-", i), "read"),
					},
				})
			}
			cs := security.NewCodeSource(fmt.Sprintf("file:/apps/app%d", grants/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				perms := pol.PermissionsForCode(cs)
				if perms.Len() != 1 {
					b.Fatalf("perms = %d", perms.Len())
				}
			}
		})
	}
}

// BenchmarkE5ReloadSetSize: ablation — application launch cost as the
// per-application reload set grows (the Section 5.5 open question:
// "there might be more classes that need to be re-loaded like the
// System class").
func BenchmarkE5ReloadSetSize(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("reload%d", n), func(b *testing.B) {
			reload := []string{core.SystemClassName}
			reg := []string{}
			for i := 1; i < n; i++ {
				name := fmt.Sprintf("java.lang.PerApp%d", i)
				reload = append(reload, name)
				reg = append(reg, name)
			}
			p, err := core.NewPlatform(core.Config{Name: "reload-bench", ReloadClasses: reload})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(p.Shutdown)
			for _, name := range reg {
				if err := p.ClassRegistry().Register(&classes.ClassFile{
					Name:   name,
					Super:  classes.ObjectClassName,
					Source: security.NewCodeSource("file:/system/rt"),
				}); err != nil {
					b.Fatal(err)
				}
			}
			main := func(ctx *core.Context, args []string) int {
				// Touch every reloaded class so launch cost includes
				// defining the whole set.
				for _, name := range reload {
					if _, err := ctx.App().Loader().Load(ctx.Thread(), name); err != nil {
						return 1
					}
				}
				return 0
			}
			if err := p.RegisterProgram(core.Program{Name: "toucher", Main: main}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app, err := p.Exec(core.ExecSpec{Program: "toucher"})
				if err != nil {
					b.Fatal(err)
				}
				if code := app.WaitFor(); code != 0 {
					b.Fatal("toucher failed")
				}
			}
		})
	}
}
